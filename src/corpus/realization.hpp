#pragma once
// Surface realization: facts -> prose, and facts -> question material.
//
// The same fact renders through several sentence templates so the
// corpus has lexical variety (retrieval must generalize over phrasing),
// and renders into MCQ stems + option pools for the question generator.

#include <string>
#include <vector>

#include "corpus/knowledge_base.hpp"
#include "util/rng.hpp"

namespace mcqa::corpus {

/// Number of distinct sentence templates available for a fact.
int statement_variant_count(const Fact& fact);

/// Render fact as a declarative sentence.  `variant` selects a template
/// (mod variant count) so corpora stay deterministic.
std::string realize_statement(const KnowledgeBase& kb, const Fact& fact,
                              int variant);

/// Material for building one MCQ from a fact.
struct QuestionRealization {
  std::string stem;                    ///< self-contained question text
  std::string correct;                 ///< correct option text
  std::vector<std::string> distractors;  ///< false options (>= 6 supplied)
  bool math = false;                   ///< needs arithmetic, not just recall
  /// Short statement of the underlying principle; seeds reasoning traces.
  std::string key_principle;
};

/// Build question material from a fact.  Samples the asked side
/// (subject vs object vs value) and distractor pool deterministically
/// from `rng`.  `max_distractors` bounds pool size (paper uses 6 wrong +
/// 1 correct = 7 options).
QuestionRealization realize_question(const KnowledgeBase& kb, const Fact& fact,
                                     util::Rng& rng,
                                     std::size_t max_distractors = 6);

/// Render a numeric value the way the corpus prints it (e.g. "2.9 Gy",
/// "8.02 days").
std::string format_quantity(double value, const std::string& unit);

}  // namespace mcqa::corpus
