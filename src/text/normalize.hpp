#pragma once
// Text normalization used before tokenization / embedding.

#include <string>
#include <string_view>

namespace mcqa::text {

/// Lowercase ASCII, collapse whitespace runs to single spaces, trim.
std::string normalize_ws(std::string_view s);

/// normalize_ws writing into a caller-owned buffer (cleared first).
/// Reusing the buffer across calls makes the hot embed path
/// allocation-free once the buffer has grown to steady state.
void normalize_ws_into(std::string_view s, std::string& out);

/// normalize_ws + strip punctuation except intra-word hyphens/digits
/// (keeps "p53", "cobalt-60", "2.5").
std::string normalize_for_matching(std::string_view s);

/// normalize_for_matching into a caller-owned buffer (cleared first).
/// A single fused pass over the raw bytes — lowercase, whitespace
/// collapse and punctuation filter at once — byte-for-byte identical to
/// normalize_for_matching's definition as normalize_ws followed by the
/// punctuation filter.
void normalize_for_matching_into(std::string_view s, std::string& out);

/// True if the character ends a sentence candidate.
bool is_sentence_terminator(char c);

}  // namespace mcqa::text
