#pragma once
// Text normalization used before tokenization / embedding.

#include <string>
#include <string_view>

namespace mcqa::text {

/// Lowercase ASCII, collapse whitespace runs to single spaces, trim.
std::string normalize_ws(std::string_view s);

/// normalize_ws + strip punctuation except intra-word hyphens/digits
/// (keeps "p53", "cobalt-60", "2.5").
std::string normalize_for_matching(std::string_view s);

/// True if the character ends a sentence candidate.
bool is_sentence_terminator(char c);

}  // namespace mcqa::text
