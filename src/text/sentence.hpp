#pragma once
// Sentence segmentation.
//
// The semantic chunker operates on sentences; segmentation quality feeds
// directly into chunk coherence.  We use a rule-based splitter with an
// abbreviation guard list tuned for scientific prose ("et al.", "Fig.",
// "e.g.", initials, decimal numbers).

#include <string>
#include <string_view>
#include <vector>

namespace mcqa::text {

struct Sentence {
  std::string text;       ///< trimmed sentence text
  std::size_t begin = 0;  ///< byte offset into the source
  std::size_t end = 0;    ///< one past the last byte
};

/// Split `s` into sentences.  Offsets refer to `s`.
std::vector<Sentence> split_sentences(std::string_view s);

}  // namespace mcqa::text
