#include "text/normalize.hpp"

#include <cctype>

namespace mcqa::text {

std::string normalize_ws(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_space = true;  // leading whitespace is dropped
  for (const char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!in_space) out += ' ';
      in_space = true;
    } else {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::string normalize_for_matching(std::string_view s) {
  const std::string lowered = normalize_ws(s);
  std::string out;
  out.reserve(lowered.size());
  for (std::size_t i = 0; i < lowered.size(); ++i) {
    const char c = lowered[i];
    if (std::isalnum(static_cast<unsigned char>(c)) || c == ' ') {
      out += c;
    } else if ((c == '-' || c == '.') && i > 0 && i + 1 < lowered.size() &&
               std::isalnum(static_cast<unsigned char>(lowered[i - 1])) &&
               std::isalnum(static_cast<unsigned char>(lowered[i + 1]))) {
      out += c;  // intra-word: cobalt-60, 2.5
    }
    // other punctuation dropped
  }
  // Collapse possible double spaces introduced by dropped punctuation.
  std::string collapsed;
  collapsed.reserve(out.size());
  bool in_space = true;
  for (const char c : out) {
    if (c == ' ') {
      if (!in_space) collapsed += ' ';
      in_space = true;
    } else {
      collapsed += c;
      in_space = false;
    }
  }
  while (!collapsed.empty() && collapsed.back() == ' ') collapsed.pop_back();
  return collapsed;
}

bool is_sentence_terminator(char c) { return c == '.' || c == '!' || c == '?'; }

}  // namespace mcqa::text
