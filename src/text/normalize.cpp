#include "text/normalize.hpp"

#include <array>
#include <cctype>

namespace mcqa::text {

namespace {

// Per-byte classification tables, built once from the <cctype> calls the
// scalar code used (the process never calls setlocale, so the "C" locale
// answers are frozen at first use).  A table load per byte replaces a
// locale-aware libc call per byte on the normalization hot path.
struct CharTables {
  std::array<char, 256> lower;
  std::array<bool, 256> space;
  std::array<bool, 256> alnum;
  CharTables() {
    for (int c = 0; c < 256; ++c) {
      lower[static_cast<std::size_t>(c)] = static_cast<char>(std::tolower(c));
      space[static_cast<std::size_t>(c)] = std::isspace(c) != 0;
      alnum[static_cast<std::size_t>(c)] = std::isalnum(c) != 0;
    }
  }
};

const CharTables& tables() {
  static const CharTables t;
  return t;
}

}  // namespace

void normalize_ws_into(std::string_view s, std::string& out) {
  const CharTables& t = tables();
  // Size to the upper bound and write through a raw pointer: one bounds
  // decision per call instead of a capacity check per emitted byte.
  out.resize(s.size());
  char* const base = out.data();
  char* dst = base;
  bool in_space = true;  // leading whitespace is dropped
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (t.space[u]) {
      if (!in_space) *dst++ = ' ';
      in_space = true;
    } else {
      *dst++ = t.lower[u];
      in_space = false;
    }
  }
  while (dst != base && dst[-1] == ' ') --dst;
  out.resize(static_cast<std::size_t>(dst - base));
}

std::string normalize_ws(std::string_view s) {
  std::string out;
  normalize_ws_into(s, out);
  return out;
}

// Single fused pass equivalent to normalize_ws followed by the
// punctuation filter.  The filter's neighbour checks are defined on the
// intermediate lowered/collapsed string; they map onto the raw bytes
// exactly:
//   * lowered[i-1] is alphanumeric iff the raw character immediately
//     before was non-space alphanumeric (a space run collapses to ' ',
//     any punctuation stays itself — neither is alnum), and
//   * lowered[i+1] is alphanumeric iff the raw character immediately
//     after is alphanumeric (whitespace next means lowered has ' ' or
//     ends there after the trailing trim).
// Dropped punctuation never introduces a space and leaves the in-space
// state untouched, so collapsing while filtering is also exact.
void normalize_for_matching_into(std::string_view s, std::string& out) {
  const CharTables& t = tables();
  out.resize(s.size());
  char* const base = out.data();
  char* dst = base;
  bool in_space = true;     // output space state (leading trim + collapse)
  bool prev_alnum = false;  // was the immediately preceding raw byte alnum?
  for (std::size_t i = 0; i < s.size(); ++i) {
    const auto u = static_cast<unsigned char>(s[i]);
    if (t.space[u]) {
      if (!in_space) *dst++ = ' ';
      in_space = true;
      prev_alnum = false;
      continue;
    }
    if (t.alnum[u]) {
      *dst++ = t.lower[u];
      in_space = false;
      prev_alnum = true;
      continue;
    }
    if ((s[i] == '-' || s[i] == '.') && prev_alnum && i + 1 < s.size() &&
        t.alnum[static_cast<unsigned char>(s[i + 1])]) {
      *dst++ = s[i];  // intra-word: cobalt-60, 2.5
      in_space = false;
    }
    // other punctuation dropped (without affecting the space state)
    prev_alnum = false;
  }
  while (dst != base && dst[-1] == ' ') --dst;
  out.resize(static_cast<std::size_t>(dst - base));
}

std::string normalize_for_matching(std::string_view s) {
  std::string out;
  normalize_for_matching_into(s, out);
  return out;
}

bool is_sentence_terminator(char c) { return c == '.' || c == '!' || c == '?'; }

}  // namespace mcqa::text
