#include "text/vocab.hpp"

#include <cmath>

#include "util/strings.hpp"

namespace mcqa::text {

Vocabulary::Vocabulary() {
  words_.emplace_back("<unk>");
  freq_.push_back(0);
  ids_.emplace("<unk>", kUnknown);
}

void Vocabulary::add_text(std::string_view normalized) {
  for (const auto w : util::split(normalized, ' ')) {
    if (w.empty()) continue;
    const std::uint32_t wid = intern(w);
    ++freq_[wid];
    ++total_;
  }
}

std::uint32_t Vocabulary::id(std::string_view word) const {
  const auto it = ids_.find(std::string(word));
  return it == ids_.end() ? kUnknown : it->second;
}

std::uint32_t Vocabulary::intern(std::string_view word) {
  const auto [it, inserted] =
      ids_.emplace(std::string(word), static_cast<std::uint32_t>(words_.size()));
  if (inserted) {
    words_.emplace_back(word);
    freq_.push_back(0);
  }
  return it->second;
}

double Vocabulary::idf(std::uint32_t wid) const {
  if (wid >= freq_.size() || total_ == 0) return 0.0;
  const double n = static_cast<double>(total_);
  const double df = static_cast<double>(freq_[wid]) + 1.0;
  const double v = std::log(n / df);
  return v > 0.0 ? v : 0.0;
}

std::vector<std::uint32_t> Vocabulary::encode(
    std::string_view normalized) const {
  std::vector<std::uint32_t> out;
  for (const auto w : util::split(normalized, ' ')) {
    if (!w.empty()) out.push_back(id(w));
  }
  return out;
}

}  // namespace mcqa::text
