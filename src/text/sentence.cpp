#include "text/sentence.hpp"

#include <array>
#include <cctype>

#include "text/normalize.hpp"
#include "util/strings.hpp"

namespace mcqa::text {

namespace {

constexpr std::array<std::string_view, 15> kAbbreviations = {
    "et al", "al", "fig", "figs", "eq", "eqs", "e.g", "i.e", "cf", "vs",
    "dr", "no", "ref", "refs", "approx"};

/// Does the text ending at position `dot` (exclusive of the '.') look
/// like a known abbreviation?
bool ends_with_abbreviation(std::string_view s, std::size_t dot) {
  // Extract the word before the dot.
  std::size_t start = dot;
  while (start > 0) {
    const char c = s[start - 1];
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '.') {
      --start;
    } else {
      break;
    }
  }
  if (start == dot) return false;
  const std::string word = util::to_lower(s.substr(start, dot - start));
  for (const auto abbr : kAbbreviations) {
    if (word == abbr) return true;
  }
  // Single-letter initials ("J. Smith").
  if (word.size() == 1 && std::isalpha(static_cast<unsigned char>(word[0]))) {
    return true;
  }
  return false;
}

bool is_decimal_point(std::string_view s, std::size_t dot) {
  return dot > 0 && dot + 1 < s.size() &&
         std::isdigit(static_cast<unsigned char>(s[dot - 1])) &&
         std::isdigit(static_cast<unsigned char>(s[dot + 1]));
}

}  // namespace

std::vector<Sentence> split_sentences(std::string_view s) {
  std::vector<Sentence> out;
  std::size_t start = 0;

  const auto flush = [&](std::size_t end_pos) {
    // Trim the candidate [start, end_pos).
    std::size_t b = start;
    std::size_t e = end_pos;
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    if (e > b) {
      out.push_back(Sentence{std::string(s.substr(b, e - b)), b, e});
    }
    start = end_pos;
  };

  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '\n' && i + 1 < s.size() && s[i + 1] == '\n') {
      flush(i);  // paragraph break always ends a sentence
      continue;
    }
    if (!is_sentence_terminator(c)) continue;
    if (c == '.' && (is_decimal_point(s, i) || ends_with_abbreviation(s, i))) {
      continue;
    }
    // Consume trailing terminators / closing quotes.
    std::size_t j = i + 1;
    while (j < s.size() && (is_sentence_terminator(s[j]) || s[j] == '"' ||
                            s[j] == ')' || s[j] == '\'')) {
      ++j;
    }
    // Require end-of-text or whitespace next; otherwise it's mid-token.
    if (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) {
      continue;
    }
    flush(j);
    i = j > 0 ? j - 1 : 0;
  }
  flush(s.size());
  return out;
}

}  // namespace mcqa::text
