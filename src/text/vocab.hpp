#pragma once
// Word vocabulary with frequency counts.  Shared by the embedder (IDF
// weighting) and the n-gram language model.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mcqa::text {

class Vocabulary {
 public:
  static constexpr std::uint32_t kUnknown = 0;

  Vocabulary();

  /// Add every word of (already normalized, space-delimited) text.
  void add_text(std::string_view normalized);

  /// Lookup; returns kUnknown when absent.
  std::uint32_t id(std::string_view word) const;

  /// Insert-or-lookup.
  std::uint32_t intern(std::string_view word);

  const std::string& word(std::uint32_t id) const { return words_.at(id); }
  std::size_t frequency(std::uint32_t id) const { return freq_.at(id); }
  std::size_t size() const { return words_.size(); }
  std::size_t total_count() const { return total_; }

  /// log(N / df) style inverse document frequency proxy using corpus
  /// term counts; smooth and never negative.
  double idf(std::uint32_t id) const;

  /// Encode normalized text to ids (unknowns map to kUnknown).
  std::vector<std::uint32_t> encode(std::string_view normalized) const;

 private:
  std::vector<std::string> words_;
  std::vector<std::size_t> freq_;
  std::unordered_map<std::string, std::uint32_t> ids_;
  std::size_t total_ = 0;
};

}  // namespace mcqa::text
