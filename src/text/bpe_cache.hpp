#pragma once
// Process-wide memoized BPE training.
//
// Both subword students — the Kneser-Ney `llm/ngram_lm` and the
// trainable log-bilinear `llm/trained_student` — adapt a BPE vocabulary
// to their training text.  This helper is the single code path they
// share: one tokenizer is trained (deterministically) per
// (corpus content hash, vocab budget) and returned by shared pointer,
// so equal-budget ablations over the same text never re-run the greedy
// merge loop and never risk diverging tokenizations.
//
// The cache key is the fnv1a digest of the exact training bytes, so a
// truncated corpus view (NgramLmConfig::corpus_fraction, the trainer's
// equal-byte budgets) keys separately from the full text, and editing
// one training document changes the key.  BPE training itself is
// deterministic (sorted word types, rank-ordered merges), so a cache
// hit is byte-for-byte the tokenizer a fresh train() would produce.

#include <cstddef>
#include <memory>
#include <string_view>

#include "text/bpe.hpp"

namespace mcqa::text {

/// The shared tokenizer for (corpus bytes, vocab budget): trained on
/// first use, memoized for the life of the process.  Thread-safe.
std::shared_ptr<const BpeTokenizer> shared_bpe(std::string_view corpus,
                                               std::size_t vocab_budget);

struct BpeCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;  ///< tokenizers actually trained
};

/// Process-wide hit/miss counters (tests assert the single-train-path
/// contract with these).
BpeCacheStats bpe_cache_stats();

}  // namespace mcqa::text
