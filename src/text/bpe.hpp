#pragma once
// Trainable byte-pair encoding tokenizer.
//
// The n-gram student-model backend (llm/ngram_lm) scores option text by
// log-likelihood over a subword stream; BPE gives it a vocabulary that
// adapts to the synthetic domain corpus the same way SentencePiece
// adapts to a pretraining corpus.  Training is the classic greedy
// highest-frequency-pair merge loop over word types.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mcqa::text {

class BpeTokenizer {
 public:
  /// Train on raw text.  `vocab_budget` bounds merges + byte alphabet.
  static BpeTokenizer train(std::string_view corpus, std::size_t vocab_budget);

  /// Encode into token ids.
  std::vector<std::uint32_t> encode(std::string_view text) const;

  /// Decode ids back to text (inverse of encode up to normalization).
  std::string decode(const std::vector<std::uint32_t>& ids) const;

  /// Token string for an id.
  const std::string& token(std::uint32_t id) const { return vocab_.at(id); }

  std::size_t vocab_size() const { return vocab_.size(); }
  std::size_t merge_count() const { return merge_ranks_.size(); }

  /// Serialize / restore (JSON-free compact text format).
  std::string save() const;
  static BpeTokenizer load(std::string_view blob);

  /// Default-constructed tokenizer: empty vocabulary, everything maps to
  /// <unk>.  Valid target for assignment from train()/load().
  BpeTokenizer() = default;

 private:
  /// Apply trained merges to one word (space-free unit).
  std::vector<std::string> apply_merges(std::string_view word) const;

  std::vector<std::string> vocab_;                       // id -> token
  std::unordered_map<std::string, std::uint32_t> ids_;   // token -> id
  // (left, right) -> merge rank; lower rank merges first.
  std::map<std::pair<std::string, std::string>, std::size_t> merge_ranks_;
  std::uint32_t unk_id_ = 0;
};

}  // namespace mcqa::text
