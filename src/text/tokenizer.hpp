#pragma once
// Word-level tokenization and token counting.
//
// Context windows in Table 1 are measured in tokens; the RAG prompt
// assembler budgets retrieved context against each model's window using
// these counts.  We approximate subword token counts from word tokens
// with a calibrated inflation factor (real tokenizers emit ~1.3 subwords
// per English word); the BPE tokenizer (bpe.hpp) provides exact counts
// where a trained vocabulary exists.

#include <string>
#include <string_view>
#include <vector>

namespace mcqa::text {

struct Token {
  std::string text;
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Split into word/number/punctuation tokens.
std::vector<Token> word_tokenize(std::string_view s);

/// Just the count, without materializing tokens.
std::size_t count_words(std::string_view s);

/// Approximate LLM (subword) token count for budgeting.
std::size_t approx_llm_tokens(std::string_view s);

/// Word n-grams (normalized) for embedding features.
std::vector<std::string> word_ngrams(std::string_view normalized, int n);

/// Allocation-free iteration over the space-delimited words of an
/// already-normalized string.  Each dereference is a std::string_view
/// into the original buffer; runs of ' ' separate words exactly as in
/// word_ngrams, so `for (auto w : WordViews(s))` visits the same words
/// word_ngrams(s, 1) materializes — without the per-word std::string.
class WordViews {
 public:
  class iterator {
   public:
    using value_type = std::string_view;

    iterator(std::string_view s, std::size_t pos) : s_(s), pos_(pos) {
      advance();
    }

    std::string_view operator*() const { return s_.substr(pos_, len_); }

    iterator& operator++() {
      pos_ += len_;
      advance();
      return *this;
    }

    bool operator!=(const iterator& other) const { return pos_ != other.pos_; }
    bool operator==(const iterator& other) const { return pos_ == other.pos_; }

   private:
    void advance() {
      while (pos_ < s_.size() && s_[pos_] == ' ') ++pos_;
      std::size_t end = pos_;
      while (end < s_.size() && s_[end] != ' ') ++end;
      len_ = end - pos_;
    }

    std::string_view s_;
    std::size_t pos_ = 0;
    std::size_t len_ = 0;
  };

  explicit WordViews(std::string_view s) : s_(s) {}
  iterator begin() const { return iterator(s_, 0); }
  iterator end() const { return iterator(s_, s_.size()); }

 private:
  std::string_view s_;
};

}  // namespace mcqa::text
