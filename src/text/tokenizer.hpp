#pragma once
// Word-level tokenization and token counting.
//
// Context windows in Table 1 are measured in tokens; the RAG prompt
// assembler budgets retrieved context against each model's window using
// these counts.  We approximate subword token counts from word tokens
// with a calibrated inflation factor (real tokenizers emit ~1.3 subwords
// per English word); the BPE tokenizer (bpe.hpp) provides exact counts
// where a trained vocabulary exists.

#include <string>
#include <string_view>
#include <vector>

namespace mcqa::text {

struct Token {
  std::string text;
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Split into word/number/punctuation tokens.
std::vector<Token> word_tokenize(std::string_view s);

/// Just the count, without materializing tokens.
std::size_t count_words(std::string_view s);

/// Approximate LLM (subword) token count for budgeting.
std::size_t approx_llm_tokens(std::string_view s);

/// Word n-grams (normalized) for embedding features.
std::vector<std::string> word_ngrams(std::string_view normalized, int n);

}  // namespace mcqa::text
