#include "text/bpe.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "text/normalize.hpp"
#include "util/strings.hpp"

namespace mcqa::text {

namespace {

constexpr std::string_view kEndOfWord = "</w>";
constexpr std::string_view kUnk = "<unk>";

/// Split normalized text into words (space-delimited).
std::vector<std::string> words_of(std::string_view normalized) {
  std::vector<std::string> out;
  for (const auto w : util::split(normalized, ' ')) {
    if (!w.empty()) out.emplace_back(w);
  }
  return out;
}

}  // namespace

BpeTokenizer BpeTokenizer::train(std::string_view corpus,
                                 std::size_t vocab_budget) {
  BpeTokenizer t;

  // Word-type frequency table over the normalized corpus.
  const std::string normalized = normalize_ws(corpus);
  std::unordered_map<std::string, std::size_t> word_freq;
  for (auto& w : words_of(normalized)) ++word_freq[w];

  // Each word type starts as a sequence of single characters + </w>.
  struct WordEntry {
    std::vector<std::string> symbols;
    std::size_t freq;
  };
  std::vector<WordEntry> entries;
  entries.reserve(word_freq.size());
  for (const auto& [w, f] : word_freq) {
    WordEntry e;
    e.freq = f;
    for (const char c : w) e.symbols.emplace_back(1, c);
    e.symbols.emplace_back(kEndOfWord);
    entries.push_back(std::move(e));
  }
  // Deterministic processing order regardless of hash-map iteration.
  std::sort(entries.begin(), entries.end(),
            [](const WordEntry& a, const WordEntry& b) {
              if (a.freq != b.freq) return a.freq > b.freq;
              return a.symbols < b.symbols;
            });

  // Seed vocabulary: <unk> + all single characters observed + </w>.
  const auto add_token = [&t](const std::string& tok) {
    if (t.ids_.contains(tok)) return;
    t.ids_.emplace(tok, static_cast<std::uint32_t>(t.vocab_.size()));
    t.vocab_.push_back(tok);
  };
  add_token(std::string(kUnk));
  t.unk_id_ = 0;
  add_token(std::string(kEndOfWord));
  for (const auto& e : entries) {
    for (const auto& s : e.symbols) add_token(s);
  }

  // Greedy merge loop.
  while (t.vocab_.size() < vocab_budget) {
    // Count adjacent pairs weighted by word frequency.
    std::map<std::pair<std::string, std::string>, std::size_t> pair_freq;
    for (const auto& e : entries) {
      for (std::size_t i = 0; i + 1 < e.symbols.size(); ++i) {
        pair_freq[{e.symbols[i], e.symbols[i + 1]}] += e.freq;
      }
    }
    if (pair_freq.empty()) break;
    // Best pair: max frequency; std::map order breaks ties lexicographically
    // so the result is deterministic.
    auto best = pair_freq.begin();
    for (auto it = pair_freq.begin(); it != pair_freq.end(); ++it) {
      if (it->second > best->second) best = it;
    }
    if (best->second < 2) break;  // nothing left worth merging

    const auto [left, right] = best->first;
    const std::string merged = left + right;
    t.merge_ranks_.emplace(best->first, t.merge_ranks_.size());
    add_token(merged);

    // Apply the merge to every word type.
    for (auto& e : entries) {
      std::vector<std::string> next;
      next.reserve(e.symbols.size());
      std::size_t i = 0;
      while (i < e.symbols.size()) {
        if (i + 1 < e.symbols.size() && e.symbols[i] == left &&
            e.symbols[i + 1] == right) {
          next.push_back(merged);
          i += 2;
        } else {
          next.push_back(e.symbols[i]);
          ++i;
        }
      }
      e.symbols = std::move(next);
    }
  }
  return t;
}

std::vector<std::string> BpeTokenizer::apply_merges(
    std::string_view word) const {
  std::vector<std::string> symbols;
  symbols.reserve(word.size() + 1);
  for (const char c : word) symbols.emplace_back(1, c);
  symbols.emplace_back(kEndOfWord);

  // Repeatedly apply the lowest-rank eligible merge (standard BPE encode).
  for (;;) {
    std::size_t best_rank = merge_ranks_.size();
    std::size_t best_pos = symbols.size();
    for (std::size_t i = 0; i + 1 < symbols.size(); ++i) {
      const auto it = merge_ranks_.find({symbols[i], symbols[i + 1]});
      if (it != merge_ranks_.end() && it->second < best_rank) {
        best_rank = it->second;
        best_pos = i;
      }
    }
    if (best_pos == symbols.size()) break;
    symbols[best_pos] += symbols[best_pos + 1];
    symbols.erase(symbols.begin() + static_cast<std::ptrdiff_t>(best_pos) + 1);
  }
  return symbols;
}

std::vector<std::uint32_t> BpeTokenizer::encode(std::string_view text) const {
  std::vector<std::uint32_t> out;
  const std::string normalized = normalize_ws(text);
  for (const auto& word : words_of(normalized)) {
    for (const auto& sym : apply_merges(word)) {
      const auto it = ids_.find(sym);
      out.push_back(it != ids_.end() ? it->second : unk_id_);
    }
  }
  return out;
}

std::string BpeTokenizer::decode(const std::vector<std::uint32_t>& ids) const {
  std::string out;
  for (const std::uint32_t id : ids) {
    if (id >= vocab_.size()) continue;
    const std::string& tok = vocab_[id];
    if (tok == kEndOfWord) {
      out += ' ';
    } else if (util::ends_with(tok, kEndOfWord)) {
      out += tok.substr(0, tok.size() - kEndOfWord.size());
      out += ' ';
    } else if (tok != kUnk) {
      out += tok;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::string BpeTokenizer::save() const {
  std::ostringstream os;
  os << "bpe-v1\n" << vocab_.size() << "\n";
  for (const auto& tok : vocab_) os << tok << "\n";
  os << merge_ranks_.size() << "\n";
  // Persist in rank order so load() reconstructs identical ranks.
  std::vector<std::pair<std::string, std::string>> by_rank(merge_ranks_.size());
  for (const auto& [pair, rank] : merge_ranks_) by_rank[rank] = pair;
  for (const auto& [l, r] : by_rank) os << l << "\t" << r << "\n";
  return os.str();
}

BpeTokenizer BpeTokenizer::load(std::string_view blob) {
  BpeTokenizer t;
  std::istringstream is{std::string(blob)};
  std::string line;
  if (!std::getline(is, line) || line != "bpe-v1") {
    throw std::runtime_error("BpeTokenizer::load: bad magic");
  }
  std::size_t vocab_n = 0;
  is >> vocab_n;
  is.ignore();
  for (std::size_t i = 0; i < vocab_n; ++i) {
    std::getline(is, line);
    t.ids_.emplace(line, static_cast<std::uint32_t>(t.vocab_.size()));
    t.vocab_.push_back(line);
  }
  std::size_t merge_n = 0;
  is >> merge_n;
  is.ignore();
  for (std::size_t i = 0; i < merge_n; ++i) {
    std::getline(is, line);
    const auto tab = line.find('\t');
    if (tab == std::string::npos) {
      throw std::runtime_error("BpeTokenizer::load: bad merge line");
    }
    t.merge_ranks_.emplace(
        std::make_pair(line.substr(0, tab), line.substr(tab + 1)), i);
  }
  t.unk_id_ = 0;
  return t;
}

}  // namespace mcqa::text
