#include "text/tokenizer.hpp"

#include <cctype>

namespace mcqa::text {

namespace {
bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
}  // namespace

std::vector<Token> word_tokenize(std::string_view s) {
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < s.size()) {
    const char c = s[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    if (is_word_char(c)) {
      while (i < s.size() && (is_word_char(s[i]) ||
                              // keep intra-word hyphens and decimal points
                              ((s[i] == '-' || s[i] == '.') && i + 1 < s.size() &&
                               is_word_char(s[i + 1]) && i > start))) {
        ++i;
      }
    } else {
      ++i;  // single punctuation token
    }
    out.push_back(Token{std::string(s.substr(start, i - start)), start, i});
  }
  return out;
}

std::size_t count_words(std::string_view s) {
  std::size_t count = 0;
  bool in_word = false;
  for (const char c : s) {
    const bool w = !std::isspace(static_cast<unsigned char>(c));
    if (w && !in_word) ++count;
    in_word = w;
  }
  return count;
}

std::size_t approx_llm_tokens(std::string_view s) {
  // ~1.33 subword tokens per whitespace-delimited word is a good fit for
  // scientific English across GPT-2/Llama-family tokenizers.
  const std::size_t words = count_words(s);
  return words + (words / 3) + 1;
}

std::vector<std::string> word_ngrams(std::string_view normalized, int n) {
  std::vector<std::string> out;
  if (n <= 0) return out;
  std::vector<std::string_view> words;
  for (const std::string_view w : WordViews(normalized)) words.push_back(w);
  if (words.size() < static_cast<std::size_t>(n)) return out;
  out.reserve(words.size() - static_cast<std::size_t>(n) + 1);
  for (std::size_t i = 0; i + static_cast<std::size_t>(n) <= words.size(); ++i) {
    std::string gram;
    for (int j = 0; j < n; ++j) {
      if (j != 0) gram += ' ';
      gram += words[i + static_cast<std::size_t>(j)];
    }
    out.push_back(std::move(gram));
  }
  return out;
}

}  // namespace mcqa::text
