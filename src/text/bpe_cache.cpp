#include "text/bpe_cache.hpp"

#include <map>
#include <mutex>
#include <utility>

#include "util/hash.hpp"

namespace mcqa::text {

namespace {

struct Cache {
  std::mutex mutex;
  // (corpus digest, vocab budget) -> trained tokenizer.
  std::map<std::pair<std::uint64_t, std::size_t>,
           std::shared_ptr<const BpeTokenizer>>
      entries;
  BpeCacheStats stats;
};

Cache& cache() {
  static Cache c;
  return c;
}

}  // namespace

std::shared_ptr<const BpeTokenizer> shared_bpe(std::string_view corpus,
                                               std::size_t vocab_budget) {
  const std::pair<std::uint64_t, std::size_t> key{util::fnv1a64(corpus),
                                                  vocab_budget};
  Cache& c = cache();
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    const auto it = c.entries.find(key);
    if (it != c.entries.end()) {
      ++c.stats.hits;
      return it->second;
    }
  }
  // Train outside the lock (minutes-long on big corpora); a racing
  // second trainer produces an identical tokenizer and the first insert
  // wins.
  auto trained = std::make_shared<const BpeTokenizer>(
      BpeTokenizer::train(corpus, vocab_budget));
  std::lock_guard<std::mutex> lock(c.mutex);
  const auto [it, inserted] = c.entries.emplace(key, std::move(trained));
  if (inserted) {
    ++c.stats.misses;
  } else {
    ++c.stats.hits;
  }
  return it->second;
}

BpeCacheStats bpe_cache_stats() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mutex);
  return c.stats;
}

}  // namespace mcqa::text
