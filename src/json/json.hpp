#pragma once
// Self-contained JSON value model, parser and writer.
//
// The paper's pipeline stores every artifact as JSON: parsed-document
// records (AdaParse output), MCQA records (Fig. 2 schema) and
// reasoning-trace records (Fig. 3 schema).  We implement JSON in-tree so
// the library has zero external dependencies beyond gtest/benchmark.
//
// Objects preserve insertion order so serialized records diff cleanly
// and match the field order of the paper's schemas.

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace mcqa::json {

class Value;

using Array = std::vector<Value>;

/// Insertion-ordered object: vector of pairs with an index for O(log n)
/// key lookup.  Key duplication is rejected at insert time.
class Object {
 public:
  Value& operator[](std::string_view key);
  const Value* find(std::string_view key) const;
  Value* find(std::string_view key);
  const Value& at(std::string_view key) const;
  bool contains(std::string_view key) const { return find(key) != nullptr; }
  bool erase(std::string_view key);

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }
  auto begin() { return items_.begin(); }
  auto end() { return items_.end(); }

  bool operator==(const Object& other) const;

 private:
  std::vector<std::pair<std::string, Value>> items_;
  std::map<std::string, std::size_t, std::less<>> index_;
};

class TypeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class Value {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(int i) : data_(static_cast<std::int64_t>(i)) {}
  Value(unsigned i) : data_(static_cast<std::int64_t>(i)) {}
  Value(std::int64_t i) : data_(i) {}
  Value(std::uint64_t i) : data_(static_cast<std::int64_t>(i)) {}
  Value(double d) : data_(d) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(std::string_view s) : data_(std::string(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  Type type() const { return static_cast<Type>(data_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_int() const { return type() == Type::kInt; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;  ///< widens ints
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Convenience with-default accessors for optional schema fields.
  bool get_or(std::string_view key, bool fallback) const;
  std::int64_t get_or(std::string_view key, std::int64_t fallback) const;
  double get_or(std::string_view key, double fallback) const;
  std::string get_or(std::string_view key, std::string_view fallback) const;
  /// Disambiguation: without this, a string-literal fallback would bind
  /// to the bool overload (pointer-to-bool is a standard conversion).
  std::string get_or(std::string_view key, const char* fallback) const {
    return get_or(key, std::string_view(fallback));
  }

  /// Object field access; throws TypeError when not an object or missing.
  const Value& at(std::string_view key) const;
  Value& operator[](std::string_view key);

  /// Array element access.
  const Value& at(std::size_t i) const;

  bool operator==(const Value& other) const { return data_ == other.data_; }

  /// Serialize.  indent < 0 means compact single-line output.
  std::string dump(int indent = -1) const;

  /// Parse a complete JSON document; trailing garbage is an error.
  static Value parse(std::string_view text);

  /// Build helpers for terse record-construction code.
  static Value array(std::initializer_list<Value> items) {
    return Value(Array(items));
  }
  static Value object() { return Value(Object{}); }

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      data_;
};

/// Escape a string for embedding in JSON output (without quotes).
std::string escape(std::string_view s);

/// Parse a JSON-Lines blob: one document per non-empty line.  Used for
/// the pipeline's .jsonl artifact files.
std::vector<Value> parse_jsonl(std::string_view text);

/// Serialize one document per line.
std::string dump_jsonl(const std::vector<Value>& docs);

}  // namespace mcqa::json
