#include "json/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace mcqa::json {

// ---------------------------------------------------------------------------
// Object

Value& Object::operator[](std::string_view key) {
  if (auto* v = find(key)) return *v;
  index_.emplace(std::string(key), items_.size());
  items_.emplace_back(std::string(key), Value());
  return items_.back().second;
}

const Value* Object::find(std::string_view key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : &items_[it->second].second;
}

Value* Object::find(std::string_view key) {
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : &items_[it->second].second;
}

const Value& Object::at(std::string_view key) const {
  if (const auto* v = find(key)) return *v;
  throw TypeError("missing object key: " + std::string(key));
}

bool Object::erase(std::string_view key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  const std::size_t pos = it->second;
  items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(pos));
  index_.erase(it);
  for (auto& [k, i] : index_) {
    if (i > pos) --i;
  }
  return true;
}

bool Object::operator==(const Object& other) const {
  // Order-insensitive comparison: schemas compare by content.
  if (items_.size() != other.items_.size()) return false;
  for (const auto& [k, v] : items_) {
    const Value* ov = other.find(k);
    if (ov == nullptr || !(*ov == v)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Value accessors

namespace {
[[noreturn]] void type_fail(const char* want, Value::Type got) {
  static const char* kNames[] = {"null",   "bool",  "int",   "double",
                                 "string", "array", "object"};
  throw TypeError(std::string("expected ") + want + ", got " +
                  kNames[static_cast<int>(got)]);
}
}  // namespace

bool Value::as_bool() const {
  if (const auto* b = std::get_if<bool>(&data_)) return *b;
  type_fail("bool", type());
}

std::int64_t Value::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&data_)) return *i;
  if (const auto* d = std::get_if<double>(&data_)) {
    if (std::floor(*d) == *d) return static_cast<std::int64_t>(*d);
  }
  type_fail("int", type());
}

double Value::as_double() const {
  if (const auto* d = std::get_if<double>(&data_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&data_)) {
    return static_cast<double>(*i);
  }
  type_fail("number", type());
}

const std::string& Value::as_string() const {
  if (const auto* s = std::get_if<std::string>(&data_)) return *s;
  type_fail("string", type());
}

const Array& Value::as_array() const {
  if (const auto* a = std::get_if<Array>(&data_)) return *a;
  type_fail("array", type());
}

Array& Value::as_array() {
  if (auto* a = std::get_if<Array>(&data_)) return *a;
  type_fail("array", type());
}

const Object& Value::as_object() const {
  if (const auto* o = std::get_if<Object>(&data_)) return *o;
  type_fail("object", type());
}

Object& Value::as_object() {
  if (auto* o = std::get_if<Object>(&data_)) return *o;
  type_fail("object", type());
}

bool Value::get_or(std::string_view key, bool fallback) const {
  if (!is_object()) return fallback;
  const Value* v = as_object().find(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : fallback;
}

std::int64_t Value::get_or(std::string_view key, std::int64_t fallback) const {
  if (!is_object()) return fallback;
  const Value* v = as_object().find(key);
  return v != nullptr && v->is_number() ? v->as_int() : fallback;
}

double Value::get_or(std::string_view key, double fallback) const {
  if (!is_object()) return fallback;
  const Value* v = as_object().find(key);
  return v != nullptr && v->is_number() ? v->as_double() : fallback;
}

std::string Value::get_or(std::string_view key,
                          std::string_view fallback) const {
  if (!is_object()) return std::string(fallback);
  const Value* v = as_object().find(key);
  return v != nullptr && v->is_string() ? v->as_string()
                                        : std::string(fallback);
}

const Value& Value::at(std::string_view key) const {
  return as_object().at(key);
}

Value& Value::operator[](std::string_view key) {
  if (is_null()) data_ = Object{};
  return as_object()[key];
}

const Value& Value::at(std::size_t i) const {
  const Array& a = as_array();
  if (i >= a.size()) {
    throw TypeError("array index out of range: " + std::to_string(i));
  }
  return a[i];
}

// ---------------------------------------------------------------------------
// Writer

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void write_value(const Value& v, std::string& out, int indent, int depth);

void write_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

void write_double(double d, std::string& out) {
  if (std::isnan(d) || std::isinf(d)) {
    out += "null";  // JSON has no nan/inf; record schemas never emit them
    return;
  }
  // Keep the value typed as a double across a round trip: an integral
  // double must not serialize to an integer literal.
  const auto emit = [&out](const char* repr) {
    std::string s(repr);
    if (s.find_first_of(".eE") == std::string::npos) s += ".0";
    out += s;
  };
  // Shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, d);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == d) {
      emit(probe);
      return;
    }
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  emit(buf);
}

void write_value(const Value& v, std::string& out, int indent, int depth) {
  switch (v.type()) {
    case Value::Type::kNull: out += "null"; break;
    case Value::Type::kBool: out += v.as_bool() ? "true" : "false"; break;
    case Value::Type::kInt: out += std::to_string(v.as_int()); break;
    case Value::Type::kDouble: write_double(v.as_double(), out); break;
    case Value::Type::kString:
      out += '"';
      out += escape(v.as_string());
      out += '"';
      break;
    case Value::Type::kArray: {
      const Array& a = v.as_array();
      if (a.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i != 0) out += ',';
        write_indent(out, indent, depth + 1);
        write_value(a[i], out, indent, depth + 1);
      }
      write_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Value::Type::kObject: {
      const Object& o = v.as_object();
      if (o.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, val] : o) {
        if (!first) out += ',';
        first = false;
        write_indent(out, indent, depth + 1);
        out += '"';
        out += escape(k);
        out += "\":";
        if (indent >= 0) out += ' ';
        write_value(val, out, indent, depth + 1);
      }
      write_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string Value::dump(int indent) const {
  std::string out;
  write_value(*this, out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError(why, pos_);
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!eat(c)) fail(std::string("expected '") + c + "'");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  Value parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't': parse_literal("true"); return Value(true);
      case 'f': parse_literal("false"); return Value(false);
      case 'n': parse_literal("null"); return Value(nullptr);
      default: return parse_number();
    }
  }

  void parse_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      fail("invalid literal");
    }
    pos_ += lit.size();
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (eat('}')) return Value(std::move(obj));
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (obj.contains(key)) fail("duplicate object key: " + key);
      obj[key] = parse_value();
      skip_ws();
      if (eat(',')) continue;
      expect('}');
      return Value(std::move(obj));
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (eat(']')) return Value(std::move(arr));
    for (;;) {
      skip_ws();
      arr.push_back(parse_value());
      skip_ws();
      if (eat(',')) continue;
      expect(']');
      return Value(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = take();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned cp = parse_hex4();
            if (cp >= 0xd800 && cp <= 0xdbff) {
              // Surrogate pair.
              if (!(eat('\\') && eat('u'))) fail("unpaired surrogate");
              const unsigned lo = parse_hex4();
              if (lo < 0xdc00 || lo > 0xdfff) fail("invalid low surrogate");
              cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
            }
            append_utf8(out, cp);
            break;
          }
          default: fail("invalid escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      } else {
        out += c;
      }
    }
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return v;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (eat('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
      ++pos_;
    }
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") fail("invalid number");
    if (!is_double) {
      std::int64_t iv = 0;
      const auto [p, ec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), iv);
      if (ec == std::errc() && p == tok.data() + tok.size()) return Value(iv);
      // fall through to double on overflow
    }
    double dv = 0.0;
    const std::string buf(tok);
    if (std::sscanf(buf.c_str(), "%lf", &dv) != 1) fail("invalid number");
    return Value(dv);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Value::parse(std::string_view text) { return Parser(text).parse_document(); }

std::vector<Value> parse_jsonl(std::string_view text) {
  std::vector<Value> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    // Skip blank lines (trailing newline, accidental gaps).
    bool blank = true;
    for (const char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    }
    if (!blank) out.push_back(Value::parse(line));
  }
  return out;
}

std::string dump_jsonl(const std::vector<Value>& docs) {
  std::string out;
  for (const auto& doc : docs) {
    out += doc.dump();
    out += '\n';
  }
  return out;
}

}  // namespace mcqa::json
