#pragma once
// Retrieval-augmented generation pipeline.
//
// Implements the paper's three evaluation conditions (§2.2):
//   Baseline    — the bare question;
//   RAG-Chunks  — top-k semantic chunks from the paper-derived store;
//   RAG-Traces  — top-k reasoning traces from one of the three
//                 mode-specific stores (detailed / focused / efficient).
//
// The assembler budgets retrieved text against the model's context
// window (Table 1) with room reserved for the question and the answer,
// truncating at word granularity — this is where 2K-window models lose
// chunk content that 32K-window models keep.
//
// After assembly it annotates the task with the simulation-layer
// diagnostics (is the probed fact still present, how salient is it, do
// the traces dismiss wrong options, which wrong options does the
// context lend false support to).  Annotation is pure text analysis
// against the ground-truth KB.

#include <array>
#include <string>
#include <vector>

#include "corpus/fact_matcher.hpp"
#include "corpus/knowledge_base.hpp"
#include "index/vector_store.hpp"
#include "llm/language_model.hpp"
#include "llm/model_spec.hpp"
#include "qgen/mcq_record.hpp"
#include "trace/trace_record.hpp"

namespace mcqa::parallel {
class ThreadPool;
}

namespace mcqa::rag {

enum class Condition {
  kBaseline,
  kChunks,
  kTraceDetailed,
  kTraceFocused,
  kTraceEfficient,
};
constexpr int kConditionCount = 5;

std::string_view condition_name(Condition c);
bool is_trace_condition(Condition c);

struct RagConfig {
  /// Retrieval depth per store.  Chunks benefit from a deeper cut (the
  /// needle is often not the top hit); traces are near-duplicates of
  /// their question, so a shallow cut is cleaner.
  std::size_t top_k_chunks = 10;
  std::size_t top_k_traces = 3;
  /// Tokens reserved for the question+options and the generated answer
  /// when budgeting context into the window.
  std::size_t reserve_tokens = 384;

  std::size_t top_k_for(Condition c) const {
    return c == Condition::kChunks ? top_k_chunks : top_k_traces;
  }
};

/// Bundle of retrieval databases for one experiment.
struct RetrievalStores {
  const index::VectorStore* chunks = nullptr;
  /// Indexed by TraceMode.
  std::array<const index::VectorStore*, trace::kTraceModeCount> traces{};

  const index::VectorStore* store_for(Condition c) const;
};

/// Retrieval results for one (record set, condition) pair.  Hits depend
/// only on the record and the condition's store — never on the model —
/// so one plan is computed once and shared across every model evaluated
/// under that condition (the evaluation grid's 8-way retrieval reuse).
struct RetrievalPlan {
  Condition condition = Condition::kBaseline;
  /// False for baseline or an absent/empty store: tasks are the bare
  /// question and `hits` stays empty.
  bool active = false;
  /// Per-record top-k hits, indexed like the record set.
  std::vector<std::vector<index::Hit>> hits;
};

class RagPipeline {
 public:
  RagPipeline(const corpus::KnowledgeBase& kb,
              const corpus::FactMatcher& matcher, RetrievalStores stores,
              RagConfig config = {});

  /// Build the evaluation task for (record, condition, model): retrieve,
  /// budget into the window, annotate diagnostics.
  llm::McqTask prepare(const qgen::McqRecord& record, Condition condition,
                       const llm::ModelSpec& spec) const;

  /// Batched prepare: retrieval for all records goes through the
  /// store's batched query path on `pool`, then assembly/annotation
  /// fans out across the same workers.  Element i is identical to
  /// prepare(records[i], condition, spec) at any thread count.
  std::vector<llm::McqTask> prepare_batch(
      const std::vector<qgen::McqRecord>& records, Condition condition,
      const llm::ModelSpec& spec, parallel::ThreadPool& pool) const;

  /// Empty plan for (records, condition): condition resolved against the
  /// stores (`active`) and `hits` sized to the record set, no queries
  /// issued yet.  Fill with fill_plan (range-wise, e.g. from spawned
  /// tasks) or use plan_retrieval for the blocking batched form.
  RetrievalPlan make_plan(const std::vector<qgen::McqRecord>& records,
                          Condition condition) const;

  /// Compute hits for records [lo, hi) into `plan` (no-op when the plan
  /// is inactive).  Disjoint ranges are safe to fill concurrently, and
  /// plan.hits[i] == store->query(query_for(records[i], c), k) exactly.
  void fill_plan(RetrievalPlan& plan,
                 const std::vector<qgen::McqRecord>& records, std::size_t lo,
                 std::size_t hi) const;

  /// One batched retrieval pass for the whole record set (query_batch on
  /// `pool`): the shared plan the evaluation grid hands to every model.
  RetrievalPlan plan_retrieval(const std::vector<qgen::McqRecord>& records,
                               Condition condition,
                               parallel::ThreadPool& pool) const;

  /// Assembly + annotation of record i against a shared plan.  Equal to
  /// prepare(records[i], plan.condition, spec) fieldwise — the plan only
  /// hoists the model-independent retrieval.
  llm::McqTask prepare_from_plan(const qgen::McqRecord& record,
                                 const RetrievalPlan& plan, std::size_t i,
                                 const llm::ModelSpec& spec) const;

  const RagConfig& config() const { return config_; }

  /// Retrieval key for (record, condition) — see prepare() for why
  /// chunks key on the stem and traces on the full rendering.  Public
  /// so the serving engine issues the exact query prepare() would.
  std::string query_for(const qgen::McqRecord& record,
                        Condition condition) const;

  /// Assembly + annotation for retrieval hits computed elsewhere (the
  /// non-retrieval tail of prepare, shared with the batched path).
  /// The serving engine's entry point after sharded retrieval:
  /// prepare(r, c, s) == prepare_from_hits(r, c, s,
  /// store->query(query_for(r, c), k)) by construction.
  llm::McqTask prepare_from_hits(const qgen::McqRecord& record,
                                 Condition condition,
                                 const llm::ModelSpec& spec,
                                 const std::vector<index::Hit>& hits) const;

 private:
  std::string assemble_context(const std::vector<index::Hit>& hits,
                               const llm::McqTask& task,
                               const llm::ModelSpec& spec,
                               std::vector<std::string>* kept_ids) const;
  void annotate(llm::McqTask& task, const qgen::McqRecord& record,
                Condition condition,
                const std::vector<std::string>& kept_ids) const;

  const corpus::KnowledgeBase& kb_;
  const corpus::FactMatcher& matcher_;
  RetrievalStores stores_;
  RagConfig config_;
};

}  // namespace mcqa::rag
