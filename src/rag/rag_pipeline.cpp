#include "rag/rag_pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/thread_pool.hpp"
#include "text/normalize.hpp"
#include "text/sentence.hpp"
#include "text/tokenizer.hpp"
#include "util/strings.hpp"

namespace mcqa::rag {

std::string_view condition_name(Condition c) {
  switch (c) {
    case Condition::kBaseline: return "Baseline";
    case Condition::kChunks: return "RAG-Chunks";
    case Condition::kTraceDetailed: return "RAG-RT-Detail";
    case Condition::kTraceFocused: return "RAG-RT-Focused";
    case Condition::kTraceEfficient: return "RAG-RT-Efficient";
  }
  return "unknown";
}

bool is_trace_condition(Condition c) {
  return c == Condition::kTraceDetailed || c == Condition::kTraceFocused ||
         c == Condition::kTraceEfficient;
}

const index::VectorStore* RetrievalStores::store_for(Condition c) const {
  switch (c) {
    case Condition::kBaseline: return nullptr;
    case Condition::kChunks: return chunks;
    case Condition::kTraceDetailed:
      return traces[static_cast<std::size_t>(trace::TraceMode::kDetailed)];
    case Condition::kTraceFocused:
      return traces[static_cast<std::size_t>(trace::TraceMode::kFocused)];
    case Condition::kTraceEfficient:
      return traces[static_cast<std::size_t>(trace::TraceMode::kEfficient)];
  }
  return nullptr;
}

RagPipeline::RagPipeline(const corpus::KnowledgeBase& kb,
                         const corpus::FactMatcher& matcher,
                         RetrievalStores stores, RagConfig config)
    : kb_(kb), matcher_(matcher), stores_(stores), config_(config) {}

std::string RagPipeline::assemble_context(
    const std::vector<index::Hit>& hits, const llm::McqTask& task,
    const llm::ModelSpec& spec, std::vector<std::string>* kept_ids) const {
  // Window budget: context_window - question/options - answer reserve.
  std::size_t question_tokens = text::approx_llm_tokens(task.stem);
  for (const auto& opt : task.options) {
    question_tokens += text::approx_llm_tokens(opt) + 2;
  }
  const std::size_t window = spec.context_window;
  const std::size_t reserve = config_.reserve_tokens + question_tokens;
  if (window <= reserve) return {};  // no room for any context at all
  std::size_t budget = window - reserve;

  std::string context;
  for (const auto& hit : hits) {
    const std::size_t cost = text::approx_llm_tokens(hit.text) + 4;
    if (cost <= budget) {
      if (!context.empty()) context += "\n\n";
      context += hit.text;
      budget -= cost;
      if (kept_ids != nullptr) kept_ids->push_back(hit.id);
      continue;
    }
    // Partial fit: keep a word-truncated prefix if at least a couple of
    // sentences fit; otherwise stop.
    if (budget < 48) break;
    const auto words = text::word_tokenize(hit.text);
    // tokens ~ words * 4/3  =>  words ~ budget * 3/4
    const std::size_t keep_words = budget * 3 / 4;
    if (keep_words < 24 || words.size() < 4) break;
    const std::size_t end_word = std::min(words.size(), keep_words);
    const std::size_t end_byte = words[end_word - 1].end;
    if (!context.empty()) context += "\n\n";
    context += hit.text.substr(0, end_byte);
    context += " ...";
    if (kept_ids != nullptr) kept_ids->push_back(hit.id + "#truncated");
    break;  // budget exhausted
  }
  return context;
}

namespace {

/// Negation / dismissal cues that mark a sentence as arguing *against*
/// the option it mentions.
bool sentence_dismisses(std::string_view normalized_sentence) {
  static constexpr std::string_view kCues[] = {
      "not", "inconsistent", "implausible", "set aside", "dismissed",
      "contradict", "unlikely"};
  for (const auto cue : kCues) {
    if (normalized_sentence.find(cue) != std::string_view::npos) return true;
  }
  return false;
}

}  // namespace

void RagPipeline::annotate(llm::McqTask& task, const qgen::McqRecord& record,
                           Condition condition,
                           const std::vector<std::string>& kept_ids) const {
  if (task.context.empty()) return;

  // --- probed fact still present after truncation? ------------------------
  task.context_has_fact = matcher_.contains(task.context, record.fact);

  // --- saliency: how much of the context talks about the probed fact's
  // entities at all.  A reasoning trace spends nearly every sentence on
  // the question's subject matter (high saliency); a retrieved paper
  // chunk buries the relevant sentence among unrelated results.
  const corpus::Fact& probed = kb_.fact(record.fact);
  const std::string subj_norm =
      text::normalize_for_matching(kb_.entity(probed.subject).name);
  const std::string obj_norm =
      probed.relation == corpus::RelationKind::kHalfLife
          ? subj_norm
          : text::normalize_for_matching(kb_.entity(probed.object).name);
  const std::size_t ctx_words = text::count_words(task.context);
  const auto sentences = text::split_sentences(task.context);
  std::vector<std::string> normalized_sentences;
  normalized_sentences.reserve(sentences.size());
  for (const auto& s : sentences) {
    normalized_sentences.push_back(text::normalize_for_matching(s.text));
  }
  if (task.context_has_fact && ctx_words > 0) {
    std::size_t relevant_words = 0;
    for (std::size_t i = 0; i < sentences.size(); ++i) {
      const auto& sent = normalized_sentences[i];
      if (sent.find(subj_norm) != std::string::npos ||
          sent.find(obj_norm) != std::string::npos) {
        relevant_words += text::count_words(sentences[i].text);
      }
    }
    if (relevant_words == 0) relevant_words = ctx_words / 4 + 1;
    task.context_saliency = std::clamp(
        static_cast<double>(relevant_words) / static_cast<double>(ctx_words) *
            // Short contexts are easier to read end-to-end regardless of
            // the ratio; damp the denominator for small contexts.
            (1.0 + 60.0 / static_cast<double>(ctx_words + 60)),
        0.0, 1.0);
  }

  // --- trace-specific aids --------------------------------------------------
  const bool trace_cond = is_trace_condition(condition);
  bool exact_source_trace = false;
  if (trace_cond) {
    for (const auto& id : kept_ids) {
      // Trace ids carry provenance: "t_<mode>_<record_id>".
      if (id.find(record.record_id) != std::string::npos &&
          id.find("#truncated") == std::string::npos) {
        exact_source_trace = true;
        break;
      }
    }
  }

  // --- per-option support / dismissal scan ---------------------------------
  std::size_t dismissed_wrong = 0;
  double mislead_strength = 0.0;
  for (std::size_t i = 0; i < task.options.size(); ++i) {
    if (static_cast<int>(i) == task.correct_index) continue;
    const std::string opt_norm =
        text::normalize_for_matching(task.options[i]);
    if (opt_norm.empty()) continue;
    bool strong_support = false;  // distractor tied to the question's
                                  // subject matter in one sentence
    bool weak_support = false;    // distractor asserted approvingly at all
    bool dismissed = false;
    for (const auto& sent : normalized_sentences) {
      if (sent.find(opt_norm) == std::string::npos) continue;
      if (sentence_dismisses(sent)) {
        dismissed = true;
        continue;
      }
      weak_support = true;
      if (sent.find(subj_norm) != std::string::npos ||
          sent.find(obj_norm) != std::string::npos) {
        strong_support = true;
      }
    }
    if (dismissed) ++dismissed_wrong;
    // A wrong option with apparent support is the misleading-retrieval
    // hazard; it is strongest when the probed fact itself never made it
    // into the context (nothing correct competes for attention).
    if ((strong_support || weak_support) && !dismissed) {
      task.context_misleading_options.push_back(static_cast<int>(i));
      double strength = strong_support ? 1.0 : 0.65;
      if (task.context_has_fact) strength *= 0.75;
      mislead_strength = std::max(mislead_strength, strength);
    }
  }
  task.context_mislead_strength = mislead_strength;

  task.context_is_trace = trace_cond;
  task.context_is_terse = condition == Condition::kTraceEfficient;

  // Distilled dismissals help elimination when the trace addresses the
  // question's own options (any exact-source trace; the student-side
  // abstraction factor discounts the terse efficient phrasing) or when
  // the context explicitly argues against several of them.
  task.context_has_elimination =
      exact_source_trace || (trace_cond && dismissed_wrong >= 2);

  // A trace that worked a decay computation for the same underlying
  // quantity teaches the method even when the numbers differ.  The
  // efficient mode states the principle without the steps.
  task.context_has_worked_math =
      record.math && trace_cond && task.context_has_fact &&
      condition != Condition::kTraceEfficient;
}

std::string RagPipeline::query_for(const qgen::McqRecord& record,
                                   Condition condition) const {
  return condition == Condition::kChunks
             ? record.stem
             : qgen::McqRecord::render_question(record.stem, record.options);
}

llm::McqTask RagPipeline::prepare_from_hits(const qgen::McqRecord& record,
                                 Condition condition,
                                 const llm::ModelSpec& spec,
                                 const std::vector<index::Hit>& hits) const {
  llm::McqTask task = record.to_task();
  std::vector<std::string> kept_ids;
  task.context = assemble_context(hits, task, spec, &kept_ids);
  annotate(task, record, condition, kept_ids);
  return task;
}

llm::McqTask RagPipeline::prepare(const qgen::McqRecord& record,
                                  Condition condition,
                                  const llm::ModelSpec& spec) const {
  if (condition == Condition::kBaseline) return record.to_task();

  const index::VectorStore* store = stores_.store_for(condition);
  if (store == nullptr || store->size() == 0) return record.to_task();

  // Query against the question embedding.  For the chunk store the stem
  // alone is the better key: the six distractor entities in the option
  // list drag in passages about the wrong entities.  Trace stores embed
  // the full question (their texts restate stem and options), so the
  // full rendering is the sharper key there.
  const auto hits = store->query(query_for(record, condition),
                                 config_.top_k_for(condition));
  return prepare_from_hits(record, condition, spec, hits);
}

RetrievalPlan RagPipeline::make_plan(
    const std::vector<qgen::McqRecord>& records, Condition condition) const {
  RetrievalPlan plan;
  plan.condition = condition;
  const index::VectorStore* store = stores_.store_for(condition);
  plan.active = condition != Condition::kBaseline && store != nullptr &&
                store->size() > 0;
  if (plan.active) plan.hits.resize(records.size());
  return plan;
}

void RagPipeline::fill_plan(RetrievalPlan& plan,
                            const std::vector<qgen::McqRecord>& records,
                            std::size_t lo, std::size_t hi) const {
  if (!plan.active) return;
  const index::VectorStore* store = stores_.store_for(plan.condition);
  const std::size_t k = config_.top_k_for(plan.condition);
  for (std::size_t i = lo; i < hi && i < records.size(); ++i) {
    plan.hits[i] = store->query(query_for(records[i], plan.condition), k);
  }
}

RetrievalPlan RagPipeline::plan_retrieval(
    const std::vector<qgen::McqRecord>& records, Condition condition,
    parallel::ThreadPool& pool) const {
  RetrievalPlan plan = make_plan(records, condition);
  if (!plan.active) return plan;
  const index::VectorStore* store = stores_.store_for(condition);
  std::vector<std::string> queries;
  queries.reserve(records.size());
  for (const auto& record : records) {
    queries.push_back(query_for(record, condition));
  }
  plan.hits = store->query_batch(queries, config_.top_k_for(condition), pool);
  return plan;
}

llm::McqTask RagPipeline::prepare_from_plan(const qgen::McqRecord& record,
                                            const RetrievalPlan& plan,
                                            std::size_t i,
                                            const llm::ModelSpec& spec) const {
  if (!plan.active) return record.to_task();
  return prepare_from_hits(record, plan.condition, spec, plan.hits.at(i));
}

std::vector<llm::McqTask> RagPipeline::prepare_batch(
    const std::vector<qgen::McqRecord>& records, Condition condition,
    const llm::ModelSpec& spec, parallel::ThreadPool& pool) const {
  const RetrievalPlan plan = plan_retrieval(records, condition, pool);
  std::vector<llm::McqTask> tasks(records.size());
  parallel::parallel_for(pool, 0, records.size(), [&](std::size_t i) {
    tasks[i] = prepare_from_plan(records[i], plan, i, spec);
  });
  return tasks;
}

}  // namespace mcqa::rag
