#pragma once
// Minibatch SGD trainer for the log-bilinear student (src/train's
// entry point).
//
// Determinism contract (the training-stack transpose of the
// index/kernels rule): trained weights are a pure function of
// (training text, TrainConfig) — byte-identical across runs and across
// pool thread counts.  Three mechanisms deliver that:
//
//   * seeded init — every weight drawn from util::Rng streams forked by
//     (table, row), and the BPE vocab + class map are deterministic
//     functions of the text;
//   * fixed minibatch order — each epoch walks a seeded permutation
//     (train/batching) sliced in order, so the update sequence never
//     depends on scheduling;
//   * fixed-lane gradient reduction — each minibatch splits across
//     kernels::kLanes == 8 gradient lanes (lane l accumulates examples
//     l, l+8, ... of the slice sequentially into its own dense buffer)
//     and the per-parameter lane sums combine in the kernels' fixed
//     tree ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)) before the SGD step.
//     Threads only decide *when* a lane runs, never what it sums.
//
// Held-out evaluation reserves the stream tail before training and
// reduces per-example log probs through the same 8-lane tree, so the
// reported perplexity is as thread-count-stable as the weights.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "text/bpe.hpp"
#include "train/lbl_model.hpp"

namespace mcqa::parallel {
class ThreadPool;
}

namespace mcqa::train {

struct TrainConfig {
  LblConfig model;
  std::size_t bpe_vocab = 1500;     ///< subword vocab budget
  std::size_t epochs = 3;           ///< full passes (0 = untrained init)
  std::size_t minibatch = 256;      ///< examples per SGD step
  double step_size = 0.3;           ///< SGD learning rate
  double l2 = 1e-6;                 ///< weight decay per step
  double held_out_fraction = 0.1;   ///< stream tail reserved for eval
  std::uint64_t seed = 29;          ///< minibatch-order stream seed
};

/// Stable fingerprint of every knob that changes trained bytes
/// (checkpoint keys, eval-cell keys; combine with the training-text
/// content hash).
std::uint64_t fingerprint(const TrainConfig& config);

struct TrainReport {
  std::size_t train_tokens = 0;
  std::size_t held_out_tokens = 0;
  std::size_t epochs = 0;
  std::size_t minibatches = 0;       ///< SGD steps taken in total
  double final_epoch_loss = 0.0;     ///< mean -log P, last epoch
  double held_out_perplexity = 0.0;  ///< exp of mean held-out -log P
};

/// A trained (or untrained-init, epochs == 0) model plus the tokenizer
/// it scores through and the training report.
struct TrainedLm {
  std::shared_ptr<const text::BpeTokenizer> bpe;
  LblModel model;
  TrainReport report;
};

/// Train on raw text.  `pool` hosts the gradient lanes (nullptr =
/// the process-global pool); the result is byte-identical for any pool.
TrainedLm train_lbl(std::string_view text, const TrainConfig& config,
                    parallel::ThreadPool* pool = nullptr);

/// Perplexity of `model` over a token stream window [begin, end),
/// reduced in the fixed 8-lane order.  Histories may reach back before
/// `begin` (BOS-padded at the stream start).
double stream_perplexity(const LblModel& model,
                         const std::vector<std::uint32_t>& stream,
                         std::size_t begin, std::size_t end);

}  // namespace mcqa::train
