#pragma once
// Serialization + content-addressed checkpointing glue for trained
// models.
//
// A trained-LM blob carries the tokenizer, the weight block and the
// training report, so a warm restore reproduces cold training
// byte-for-byte — including the perplexity the report prints.  Blobs
// are version-stamped; unknown magic or truncation throws, which the
// caller treats as a cache miss and retrains (the §12 corrupt-blob
// discipline).
//
// The cache key mirrors core/checkpoint's chain:
//
//   key = fnv1a( train format version , code fingerprint (caller-
//                supplied) , fingerprint(TrainConfig)
//              , training-text content hash )
//
// so editing the training text, any training knob, or the binary
// itself retires exactly the stale weights.

#include <cstdint>
#include <string>
#include <string_view>

#include "train/trainer.hpp"

namespace mcqa::train {

/// Bump when the trained-LM blob layout changes.
constexpr std::uint64_t kTrainFormatVersion = 1;

std::string serialize_trained(const TrainedLm& lm);
TrainedLm deserialize_trained(std::string_view blob);

/// Checkpoint key for trained weights.  `code_fingerprint` is
/// core::code_fingerprint() (train/ cannot depend on core/).
std::uint64_t trained_checkpoint_key(std::uint64_t code_fingerprint,
                                     const TrainConfig& config,
                                     std::string_view training_text);

/// The (config, data) fingerprint a trainable model contributes to
/// eval-cell keys: everything that can change its answers except the
/// executable (the sweep key already pins that).
std::uint64_t trained_model_fingerprint(const TrainConfig& config,
                                        std::string_view training_text);

}  // namespace mcqa::train
