#pragma once
// Deterministic minibatch scheduling for the SGD trainer.
//
// The training set is the position stream 0..N-1 of the tokenized
// corpus (position p predicts token p from the BOS-padded window before
// it).  Each epoch visits a seeded Fisher-Yates permutation of those
// positions — the permutation is a pure function of (seed, epoch, N),
// never of thread count or wall clock — sliced into fixed-size
// minibatches in order.  The trainer consumes minibatches strictly in
// schedule order and splits each one across the 8 fixed gradient lanes
// (lane l takes examples l, l+8, ... of the slice), so the entire
// update sequence is reproducible at any pool width.

#include <cstdint>
#include <vector>

namespace mcqa::train {

class MinibatchSchedule {
 public:
  /// Schedule for one epoch: a permutation of [0, examples) keyed by
  /// (seed, epoch), sliced into `minibatch`-sized runs (last one may be
  /// short).
  MinibatchSchedule(std::size_t examples, std::size_t minibatch,
                    std::uint64_t seed, std::size_t epoch);

  std::size_t minibatch_count() const;

  /// Positions of minibatch `index` (a view into the epoch permutation).
  const std::uint32_t* batch_begin(std::size_t index) const;
  std::size_t batch_size(std::size_t index) const;

 private:
  std::vector<std::uint32_t> order_;
  std::size_t minibatch_;
};

}  // namespace mcqa::train
