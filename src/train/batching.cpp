#include "train/batching.hpp"

#include <numeric>

#include "util/rng.hpp"

namespace mcqa::train {

MinibatchSchedule::MinibatchSchedule(std::size_t examples,
                                     std::size_t minibatch,
                                     std::uint64_t seed, std::size_t epoch)
    : minibatch_(minibatch == 0 ? 1 : minibatch) {
  order_.resize(examples);
  std::iota(order_.begin(), order_.end(), 0u);
  util::Rng rng = util::Rng(seed, 0x5a11ad5c4edULL).fork(epoch);
  rng.shuffle(order_);
}

std::size_t MinibatchSchedule::minibatch_count() const {
  return (order_.size() + minibatch_ - 1) / minibatch_;
}

const std::uint32_t* MinibatchSchedule::batch_begin(std::size_t index) const {
  return order_.data() + index * minibatch_;
}

std::size_t MinibatchSchedule::batch_size(std::size_t index) const {
  const std::size_t begin = index * minibatch_;
  const std::size_t end = begin + minibatch_ < order_.size()
                              ? begin + minibatch_
                              : order_.size();
  return end - begin;
}

}  // namespace mcqa::train
