#include "train/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "index/kernels.hpp"
#include "index/vector_index.hpp"  // completes SearchResult for kernels.hpp
#include "parallel/thread_pool.hpp"
#include "text/bpe_cache.hpp"
#include "train/batching.hpp"
#include "util/hash.hpp"

namespace mcqa::train {

namespace {

constexpr std::size_t kLanes = index::kernels::kLanes;

std::uint64_t hash_f64(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, 8);
  return util::hash_combine(h, util::fnv1a64(bits));
}

/// The fixed lane-combination tree from index/kernels: the ONLY order
/// in which per-lane partials become a total.
double tree8(const double* lane) {
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

float tree8f(const float* lane) {
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

/// Scratch for one example's forward/backward pass (per lane, reused).
struct LaneScratch {
  std::vector<float> h;            // prediction vector
  std::vector<float> dh;           // dLoss/dh
  std::vector<double> class_score; // class logits
  std::vector<double> word_score;  // member logits
  std::vector<std::uint32_t> hist; // BOS-padded history window
};

/// Accumulate the gradient of -log P(target | history) into `grad`
/// (same layout as model.params()).  Returns the example loss.
double accumulate_example(const LblModel& model,
                          const std::vector<std::uint32_t>& stream,
                          std::size_t position, float* grad,
                          LaneScratch& scratch) {
  const LblConfig& cfg = model.config();
  const std::size_t dim = cfg.dim;
  const std::size_t n = cfg.context;
  const std::uint32_t target = stream[position];

  scratch.hist.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::ptrdiff_t idx =
        static_cast<std::ptrdiff_t>(position) - static_cast<std::ptrdiff_t>(n) +
        static_cast<std::ptrdiff_t>(j);
    scratch.hist[j] = idx < 0 ? model.bos_id()
                              : stream[static_cast<std::size_t>(idx)];
  }

  scratch.h.resize(dim);
  scratch.dh.assign(dim, 0.0f);
  model.context_vector(scratch.hist.data(), scratch.h.data());
  const float* h = scratch.h.data();
  float* dh = scratch.dh.data();

  const float* params = model.params().data();
  const float* s = params + model.s_offset();
  const float* t = params + model.t_offset();
  const float* r = params + model.r_offset();
  const float* b = params + model.b_offset();
  const float* q = params + model.q_offset();
  const float* pos = params + model.pos_offset();
  float* g_s = grad + model.s_offset();
  float* g_t = grad + model.t_offset();
  float* g_r = grad + model.r_offset();
  float* g_b = grad + model.b_offset();
  float* g_q = grad + model.q_offset();
  float* g_pos = grad + model.pos_offset();

  // --- class level -----------------------------------------------------------
  const std::size_t classes = model.class_count();
  const std::uint32_t cls = model.class_of(target);
  scratch.class_score.resize(classes);
  double max_score = -1e30;
  for (std::size_t c = 0; c < classes; ++c) {
    const double v =
        static_cast<double>(index::kernels::dot(h, s + c * dim, dim)) +
        static_cast<double>(t[c]);
    scratch.class_score[c] = v;
    if (v > max_score) max_score = v;
  }
  double denom = 0.0;
  for (std::size_t c = 0; c < classes; ++c) {
    denom += std::exp(scratch.class_score[c] - max_score);
  }
  double loss = -(scratch.class_score[cls] - max_score - std::log(denom));
  for (std::size_t c = 0; c < classes; ++c) {
    const float f = static_cast<float>(
        std::exp(scratch.class_score[c] - max_score) / denom -
        (c == cls ? 1.0 : 0.0));
    g_t[c] += f;
    const float* s_row = s + c * dim;
    float* gs_row = g_s + c * dim;
    for (std::size_t d = 0; d < dim; ++d) {
      gs_row[d] += f * h[d];
      dh[d] += f * s_row[d];
    }
  }

  // --- word level (within the target's class) --------------------------------
  const std::uint32_t* members = model.class_begin(cls);
  const std::size_t member_count = model.class_size(cls);
  scratch.word_score.resize(member_count);
  double word_max = -1e30;
  double target_score = 0.0;
  for (std::size_t i = 0; i < member_count; ++i) {
    const std::uint32_t w = members[i];
    const double v =
        static_cast<double>(index::kernels::dot(h, r + w * dim, dim)) +
        static_cast<double>(b[w]);
    scratch.word_score[i] = v;
    if (v > word_max) word_max = v;
    if (w == target) target_score = v;
  }
  double word_denom = 0.0;
  for (std::size_t i = 0; i < member_count; ++i) {
    word_denom += std::exp(scratch.word_score[i] - word_max);
  }
  loss += -(target_score - word_max - std::log(word_denom));
  for (std::size_t i = 0; i < member_count; ++i) {
    const std::uint32_t w = members[i];
    const float f = static_cast<float>(
        std::exp(scratch.word_score[i] - word_max) / word_denom -
        (w == target ? 1.0 : 0.0));
    g_b[w] += f;
    const float* r_row = r + w * dim;
    float* gr_row = g_r + w * dim;
    for (std::size_t d = 0; d < dim; ++d) {
      gr_row[d] += f * h[d];
      dh[d] += f * r_row[d];
    }
  }

  // --- context level ---------------------------------------------------------
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint32_t w = scratch.hist[j];
    const float* q_row = q + w * dim;
    const float* p_row = pos + j * dim;
    float* gq_row = g_q + w * dim;
    float* gp_row = g_pos + j * dim;
    for (std::size_t d = 0; d < dim; ++d) {
      gp_row[d] += dh[d] * q_row[d];
      gq_row[d] += dh[d] * p_row[d];
    }
  }
  return loss;
}

}  // namespace

std::uint64_t fingerprint(const TrainConfig& config) {
  std::uint64_t h = util::fnv1a64("lbl-train-config");
  h = util::hash_combine(h, fingerprint(config.model));
  h = util::hash_combine(h, util::fnv1a64(config.bpe_vocab));
  h = util::hash_combine(h, util::fnv1a64(config.epochs));
  h = util::hash_combine(h, util::fnv1a64(config.minibatch));
  h = hash_f64(h, config.step_size);
  h = hash_f64(h, config.l2);
  h = hash_f64(h, config.held_out_fraction);
  h = util::hash_combine(h, util::fnv1a64(config.seed));
  return h;
}

double stream_perplexity(const LblModel& model,
                         const std::vector<std::uint32_t>& stream,
                         std::size_t begin, std::size_t end) {
  end = std::min(end, stream.size());
  if (begin >= end) return 0.0;
  double lane_sum[kLanes] = {0.0};
  for (std::size_t p = begin; p < end; ++p) {
    const std::size_t n = model.config().context;
    std::uint32_t hist[64];
    for (std::size_t j = 0; j < n; ++j) {
      const std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(p) -
                                 static_cast<std::ptrdiff_t>(n) +
                                 static_cast<std::ptrdiff_t>(j);
      hist[j] =
          idx < 0 ? model.bos_id() : stream[static_cast<std::size_t>(idx)];
    }
    lane_sum[(p - begin) % kLanes] += -model.log_prob(hist, stream[p]);
  }
  const double mean = tree8(lane_sum) / static_cast<double>(end - begin);
  return std::exp(mean);
}

TrainedLm train_lbl(std::string_view text, const TrainConfig& config,
                    parallel::ThreadPool* pool) {
  parallel::ThreadPool& workers =
      pool != nullptr ? *pool : parallel::ThreadPool::global();

  TrainedLm out;
  out.bpe = text::shared_bpe(text, config.bpe_vocab);
  const std::vector<std::uint32_t> stream = out.bpe->encode(text);

  const std::size_t held_out = std::min(
      stream.size(),
      static_cast<std::size_t>(static_cast<double>(stream.size()) *
                               std::clamp(config.held_out_fraction, 0.0, 0.9)));
  const std::size_t train_n = stream.size() - held_out;

  out.model = LblModel::init(config.model, out.bpe->vocab_size());
  out.report.train_tokens = train_n;
  out.report.held_out_tokens = held_out;
  out.report.epochs = config.epochs;

  std::vector<float>& params = out.model.params();
  const std::size_t psize = params.size();

  // Dense per-lane gradient buffers, allocated once.
  std::vector<std::vector<float>> lane_grad(kLanes);
  for (auto& g : lane_grad) g.assign(psize, 0.0f);
  std::vector<LaneScratch> scratch(kLanes);

  const float step = static_cast<float>(config.step_size);
  const float decay = static_cast<float>(config.step_size * config.l2);

  double last_epoch_loss = 0.0;
  for (std::size_t epoch = 0; epoch < config.epochs && train_n > 0; ++epoch) {
    const MinibatchSchedule schedule(train_n, config.minibatch, config.seed,
                                     epoch);
    double epoch_loss_lane[kLanes] = {0.0};
    for (std::size_t mb = 0; mb < schedule.minibatch_count(); ++mb) {
      const std::uint32_t* batch = schedule.batch_begin(mb);
      const std::size_t batch_n = schedule.batch_size(mb);
      double loss_lane[kLanes] = {0.0};

      // Lane fan-out: lane l owns examples l, l+kLanes, ... of the
      // slice and accumulates them sequentially into its own buffer —
      // the pool decides when a lane runs, never what it sums.
      parallel::parallel_for(
          workers, 0, kLanes,
          [&](std::size_t lane) {
            float* grad = lane_grad[lane].data();
            std::memset(grad, 0, psize * sizeof(float));
            double loss = 0.0;
            for (std::size_t i = lane; i < batch_n; i += kLanes) {
              loss += accumulate_example(out.model, stream, batch[i], grad,
                                         scratch[lane]);
            }
            loss_lane[lane] = loss;
          },
          /*grain=*/1);
      for (std::size_t l = 0; l < kLanes; ++l) {
        epoch_loss_lane[l] += loss_lane[l];
      }

      // Fixed-tree reduction + SGD step, element-parallel (each element
      // is independent, so chunking cannot change any sum).
      const float inv_batch = 1.0f / static_cast<float>(batch_n);
      parallel::parallel_for(
          workers, 0, psize, [&](std::size_t i) {
            float lanes[kLanes];
            for (std::size_t l = 0; l < kLanes; ++l) {
              lanes[l] = lane_grad[l][i];
            }
            const float g = tree8f(lanes) * inv_batch;
            params[i] -= step * g + decay * params[i];
          },
          /*grain=*/4096);
      ++out.report.minibatches;
    }
    last_epoch_loss =
        tree8(epoch_loss_lane) / static_cast<double>(train_n);
  }
  out.report.final_epoch_loss = last_epoch_loss;
  out.report.held_out_perplexity =
      stream_perplexity(out.model, stream, train_n, stream.size());
  return out;
}

}  // namespace mcqa::train
