#include "train/train_io.hpp"

#include <cstring>
#include <memory>
#include <stdexcept>

#include "util/hash.hpp"

namespace mcqa::train {

namespace {

constexpr std::string_view kMagic = "lbltrained1\n";

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

std::uint64_t take_u64(std::string_view blob, std::size_t& pos) {
  if (pos + 8 > blob.size()) {
    throw std::runtime_error("trained-lm load: truncated integer");
  }
  std::uint64_t v = 0;
  std::memcpy(&v, blob.data() + pos, 8);
  pos += 8;
  return v;
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, 8);
  put_u64(out, bits);
}

double take_f64(std::string_view blob, std::size_t& pos) {
  const std::uint64_t bits = take_u64(blob, pos);
  double v = 0.0;
  std::memcpy(&v, &bits, 8);
  return v;
}

void put_blob(std::string& out, std::string_view blob) {
  put_u64(out, blob.size());
  out.append(blob);
}

std::string_view take_blob(std::string_view blob, std::size_t& pos) {
  const std::uint64_t n = take_u64(blob, pos);
  if (pos + n > blob.size()) {
    throw std::runtime_error("trained-lm load: truncated section");
  }
  const std::string_view section = blob.substr(pos, n);
  pos += n;
  return section;
}

}  // namespace

std::string serialize_trained(const TrainedLm& lm) {
  std::string out(kMagic);
  put_blob(out, lm.bpe != nullptr ? lm.bpe->save() : std::string());
  put_blob(out, lm.model.save());
  put_u64(out, lm.report.train_tokens);
  put_u64(out, lm.report.held_out_tokens);
  put_u64(out, lm.report.epochs);
  put_u64(out, lm.report.minibatches);
  put_f64(out, lm.report.final_epoch_loss);
  put_f64(out, lm.report.held_out_perplexity);
  return out;
}

TrainedLm deserialize_trained(std::string_view blob) {
  if (blob.substr(0, kMagic.size()) != kMagic) {
    throw std::runtime_error("trained-lm load: unknown magic");
  }
  std::size_t pos = kMagic.size();
  TrainedLm lm;
  lm.bpe = std::make_shared<const text::BpeTokenizer>(
      text::BpeTokenizer::load(take_blob(blob, pos)));
  lm.model = LblModel::load(take_blob(blob, pos));
  lm.report.train_tokens = take_u64(blob, pos);
  lm.report.held_out_tokens = take_u64(blob, pos);
  lm.report.epochs = take_u64(blob, pos);
  lm.report.minibatches = take_u64(blob, pos);
  lm.report.final_epoch_loss = take_f64(blob, pos);
  lm.report.held_out_perplexity = take_f64(blob, pos);
  return lm;
}

std::uint64_t trained_checkpoint_key(std::uint64_t code_fingerprint,
                                     const TrainConfig& config,
                                     std::string_view training_text) {
  std::uint64_t h = util::fnv1a64("trained-lbl");
  h = util::hash_combine(h, util::fnv1a64(kTrainFormatVersion));
  h = util::hash_combine(h, util::fnv1a64(code_fingerprint));
  h = util::hash_combine(h, fingerprint(config));
  h = util::hash_combine(h, util::fnv1a64(training_text));
  return h;
}

std::uint64_t trained_model_fingerprint(const TrainConfig& config,
                                        std::string_view training_text) {
  std::uint64_t h = util::fnv1a64("trained-lbl-cell");
  h = util::hash_combine(h, util::fnv1a64(kTrainFormatVersion));
  h = util::hash_combine(h, fingerprint(config));
  h = util::hash_combine(h, util::fnv1a64(training_text));
  return h;
}

}  // namespace mcqa::train
