#pragma once
// Factored log-bilinear language model (the trainable student's core).
//
// OxLM-style architecture (Mnih & Hinton's LBL with a class-factored
// softmax, as in Baltescu & Blunsom's OxLM): a context-embedding table
// Q, a target-embedding table R with per-word biases, per-position
// diagonal context-combination weights, and a two-level softmax —
// P(w | h) = P(class(w) | h) * P(w | class(w), h) — over equal-size
// word classes, so scoring costs O(C + V/C) dot products instead of
// O(V).
//
// The prediction vector for a history (w_{t-n+1} .. w_{t-1}) is
//
//   h[d] = sum_j  pos[j][d] * Q[w_j][d]        (BOS rows pad short
//                                               histories)
//
// and scores are s_c = h.S_c + t_c over classes, u_w = h.R_w + b_w over
// the target's class members.  Every dot product goes through
// index/kernels::dot, so scores inherit the fixed 8-lane summation
// order and stay bit-identical across builds and thread counts.
//
// Classes are contiguous equal-size id ranges.  BPE ids follow merge
// order (roughly frequency order), so ranges stay frequency-coherent,
// but — deliberately — class *sizes* carry no corpus statistics: an
// untrained model is near-uniform over the vocabulary, so everything a
// trained model knows about the medium was learned by SGD, not smuggled
// in through the partition (the untrained-init baseline in bench_train
// sits at chance because of this).
//
// Determinism contract: init draws from util::Rng streams forked off
// the seed by table name and row id (never by allocation or iteration
// order), class assignment is a pure function of (vocab, class count),
// and the parameter block is one flat float vector with a fixed layout
// — so equal (config, vocab, updates) means equal bytes.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mcqa::train {

struct LblConfig {
  std::size_t context = 4;   ///< history length (n-1)
  std::size_t dim = 32;      ///< embedding width
  std::size_t classes = 0;   ///< class count; 0 = ~sqrt(vocab)
  std::uint64_t seed = 17;   ///< init stream seed
  double init_scale = 0.08;  ///< uniform init half-width
};

/// Stable fingerprint of the architecture knobs (checkpoint keys,
/// eval-cell keys).
std::uint64_t fingerprint(const LblConfig& config);

class LblModel {
 public:
  /// Seeded random init for a `vocab_size` vocabulary; classes are
  /// contiguous equal-size id ranges (see the header comment for why
  /// sizes must not depend on corpus counts), so the two-level softmax
  /// does O(C + V/C) work per token with C ~ sqrt(V).
  static LblModel init(const LblConfig& config, std::size_t vocab_size);

  LblModel() = default;

  const LblConfig& config() const { return config_; }
  std::size_t vocab_size() const { return vocab_; }
  std::size_t class_count() const { return classes_; }
  std::size_t param_count() const { return params_.size(); }

  /// log P(target | history).  `history` points at config().context ids,
  /// oldest first; out-of-range ids (the BOS sentinel) select the
  /// padding row.
  double log_prob(const std::uint32_t* history, std::uint32_t target) const;

  /// The BOS/padding id histories are filled with (== vocab_size()).
  std::uint32_t bos_id() const { return static_cast<std::uint32_t>(vocab_); }

  std::uint32_t class_of(std::uint32_t word) const { return class_of_[word]; }

  /// Flat parameter block (trainer surface); layout per offsets below.
  std::vector<float>& params() { return params_; }
  const std::vector<float>& params() const { return params_; }

  // Layout offsets into params(): Q is (vocab+1) x dim (last row = BOS
  // padding), R is vocab x dim, b is vocab, S is classes x dim, t is
  // classes, pos is context x dim.
  std::size_t q_offset() const { return 0; }
  std::size_t r_offset() const { return (vocab_ + 1) * config_.dim; }
  std::size_t b_offset() const { return r_offset() + vocab_ * config_.dim; }
  std::size_t s_offset() const { return b_offset() + vocab_; }
  std::size_t t_offset() const { return s_offset() + classes_ * config_.dim; }
  std::size_t pos_offset() const { return t_offset() + classes_; }

  /// Class member ids (ascending) for one class.
  const std::uint32_t* class_begin(std::uint32_t cls) const {
    return class_words_.data() + class_start_[cls];
  }
  std::size_t class_size(std::uint32_t cls) const {
    return class_start_[cls + 1] - class_start_[cls];
  }

  /// Fill `h` (size dim) with the prediction vector for `history`.
  void context_vector(const std::uint32_t* history, float* h) const;

  /// Version-stamped binary blob (weights + classes + config).
  std::string save() const;
  /// Throws std::runtime_error on unknown magic / truncation.
  static LblModel load(std::string_view blob);

  /// fnv1a over the raw parameter bytes (byte-identity checks).
  std::uint64_t weights_digest() const;

 private:
  LblConfig config_;
  std::size_t vocab_ = 0;
  std::size_t classes_ = 0;
  std::vector<float> params_;
  std::vector<std::uint32_t> class_of_;     ///< word -> class
  std::vector<std::uint32_t> class_words_;  ///< members, class-major
  std::vector<std::uint32_t> class_start_;  ///< classes_+1 offsets
};

}  // namespace mcqa::train
