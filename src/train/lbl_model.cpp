#include "train/lbl_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>

#include "index/kernels.hpp"
#include "index/vector_index.hpp"  // completes SearchResult for kernels.hpp
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace mcqa::train {

namespace {

constexpr std::string_view kMagic = "lblw1\n";
constexpr std::size_t kMaxVocab = 1u << 22;
constexpr std::size_t kMaxDim = 1u << 14;

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

std::uint64_t take_u64(std::string_view blob, std::size_t& pos) {
  if (pos + 8 > blob.size()) {
    throw std::runtime_error("lbl load: truncated integer");
  }
  std::uint64_t v = 0;
  std::memcpy(&v, blob.data() + pos, 8);
  pos += 8;
  return v;
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, 8);
  put_u64(out, bits);
}

double take_f64(std::string_view blob, std::size_t& pos) {
  const std::uint64_t bits = take_u64(blob, pos);
  double v = 0.0;
  std::memcpy(&v, &bits, 8);
  return v;
}

}  // namespace

std::uint64_t fingerprint(const LblConfig& config) {
  std::uint64_t h = util::fnv1a64("lbl-config");
  h = util::hash_combine(h, util::fnv1a64(config.context));
  h = util::hash_combine(h, util::fnv1a64(config.dim));
  h = util::hash_combine(h, util::fnv1a64(config.classes));
  h = util::hash_combine(h, util::fnv1a64(config.seed));
  std::uint64_t bits = 0;
  std::memcpy(&bits, &config.init_scale, 8);
  h = util::hash_combine(h, util::fnv1a64(bits));
  return h;
}

LblModel LblModel::init(const LblConfig& config, std::size_t vocab_size) {
  LblModel m;
  m.config_ = config;
  m.config_.context = std::clamp<std::size_t>(config.context, 1, 64);
  m.config_.dim = std::max<std::size_t>(1, config.dim);
  m.vocab_ = std::max<std::size_t>(1, vocab_size);
  std::size_t classes = config.classes;
  if (classes == 0) {
    classes = static_cast<std::size_t>(
        std::lround(std::sqrt(static_cast<double>(m.vocab_))));
  }
  m.classes_ = std::clamp<std::size_t>(classes, 1, m.vocab_);
  m.config_.classes = m.classes_;

  // Contiguous equal-size id ranges (sizes differ by at most one; the
  // first vocab % classes ranges take the extra word).  A pure function
  // of (vocab, classes) — no corpus statistics enter the partition.
  m.class_of_.assign(m.vocab_, 0);
  m.class_start_.assign(m.classes_ + 1, 0);
  const std::size_t base = m.vocab_ / m.classes_;
  const std::size_t extra = m.vocab_ % m.classes_;
  std::size_t next = 0;
  for (std::size_t c = 0; c < m.classes_; ++c) {
    m.class_start_[c] = static_cast<std::uint32_t>(next);
    next += base + (c < extra ? 1 : 0);
  }
  m.class_start_[m.classes_] = static_cast<std::uint32_t>(m.vocab_);
  for (std::size_t c = 0; c < m.classes_; ++c) {
    for (std::size_t w = m.class_start_[c]; w < m.class_start_[c + 1]; ++w) {
      m.class_of_[w] = static_cast<std::uint32_t>(c);
    }
  }
  // Member lists are the id ranges themselves.
  m.class_words_.resize(m.vocab_);
  std::iota(m.class_words_.begin(), m.class_words_.end(), 0u);

  // Seeded init: one Rng stream per (table, row), keyed by stable names
  // and ids — never by fill order — so the weight bytes are a pure
  // function of (config, vocab, counts).
  const std::size_t dim = m.config_.dim;
  m.params_.assign(m.pos_offset() + m.config_.context * dim, 0.0f);
  const util::Rng root(m.config_.seed, 0x1b1bced5eedULL);
  const auto fill_rows = [&](std::string_view table, std::size_t offset,
                             std::size_t rows, double scale) {
    const util::Rng table_rng = root.fork(table);
    for (std::size_t r = 0; r < rows; ++r) {
      util::Rng rng = table_rng.fork(r);
      float* row = m.params_.data() + offset + r * dim;
      for (std::size_t d = 0; d < dim; ++d) {
        row[d] = static_cast<float>(rng.uniform(-scale, scale));
      }
    }
  };
  fill_rows("Q", m.q_offset(), m.vocab_ + 1, m.config_.init_scale);
  fill_rows("R", m.r_offset(), m.vocab_, m.config_.init_scale);
  fill_rows("S", m.s_offset(), m.classes_, m.config_.init_scale);
  // Biases start at zero; position weights start uniform so the initial
  // prediction vector is the mean context embedding.
  float* pos = m.params_.data() + m.pos_offset();
  const float uniform =
      1.0f / static_cast<float>(m.config_.context);
  for (std::size_t i = 0; i < m.config_.context * dim; ++i) {
    pos[i] = uniform;
  }
  return m;
}

void LblModel::context_vector(const std::uint32_t* history, float* h) const {
  const std::size_t dim = config_.dim;
  const float* q = params_.data() + q_offset();
  const float* pos = params_.data() + pos_offset();
  for (std::size_t d = 0; d < dim; ++d) h[d] = 0.0f;
  for (std::size_t j = 0; j < config_.context; ++j) {
    const std::uint32_t w = history[j] < vocab_
                                ? history[j]
                                : static_cast<std::uint32_t>(vocab_);
    const float* row = q + w * dim;
    const float* pj = pos + j * dim;
    for (std::size_t d = 0; d < dim; ++d) {
      h[d] += pj[d] * row[d];
    }
  }
}

double LblModel::log_prob(const std::uint32_t* history,
                          std::uint32_t target) const {
  if (target >= vocab_) return -30.0;
  const std::size_t dim = config_.dim;
  std::vector<float> h(dim);
  context_vector(history, h.data());

  // Class level: log softmax over all classes.
  const float* s = params_.data() + s_offset();
  const float* t = params_.data() + t_offset();
  const std::uint32_t cls = class_of_[target];
  double class_score = 0.0;
  double max_score = -1e30;
  std::vector<double> scores(classes_);
  for (std::size_t c = 0; c < classes_; ++c) {
    const double v =
        static_cast<double>(index::kernels::dot(h.data(), s + c * dim, dim)) +
        static_cast<double>(t[c]);
    scores[c] = v;
    if (v > max_score) max_score = v;
  }
  double denom = 0.0;
  for (std::size_t c = 0; c < classes_; ++c) {
    denom += std::exp(scores[c] - max_score);
  }
  class_score = scores[cls] - max_score - std::log(denom);

  // Word level: log softmax over the target's class members.
  const float* r = params_.data() + r_offset();
  const float* b = params_.data() + b_offset();
  const std::uint32_t* members = class_begin(cls);
  const std::size_t member_count = class_size(cls);
  double word_max = -1e30;
  std::vector<double> word_scores(member_count);
  double target_score = 0.0;
  for (std::size_t i = 0; i < member_count; ++i) {
    const std::uint32_t w = members[i];
    const double v =
        static_cast<double>(index::kernels::dot(h.data(), r + w * dim, dim)) +
        static_cast<double>(b[w]);
    word_scores[i] = v;
    if (v > word_max) word_max = v;
    if (w == target) target_score = v;
  }
  double word_denom = 0.0;
  for (std::size_t i = 0; i < member_count; ++i) {
    word_denom += std::exp(word_scores[i] - word_max);
  }
  return class_score + target_score - word_max - std::log(word_denom);
}

std::string LblModel::save() const {
  std::string out(kMagic);
  put_u64(out, config_.context);
  put_u64(out, config_.dim);
  put_u64(out, config_.classes);
  put_u64(out, config_.seed);
  put_f64(out, config_.init_scale);
  put_u64(out, vocab_);
  put_u64(out, classes_);
  out.append(reinterpret_cast<const char*>(class_of_.data()),
             class_of_.size() * sizeof(std::uint32_t));
  put_u64(out, params_.size());
  out.append(reinterpret_cast<const char*>(params_.data()),
             params_.size() * sizeof(float));
  return out;
}

LblModel LblModel::load(std::string_view blob) {
  if (blob.substr(0, kMagic.size()) != kMagic) {
    throw std::runtime_error("lbl load: unknown magic");
  }
  std::size_t pos = kMagic.size();
  LblModel m;
  m.config_.context = take_u64(blob, pos);
  m.config_.dim = take_u64(blob, pos);
  m.config_.classes = take_u64(blob, pos);
  m.config_.seed = take_u64(blob, pos);
  m.config_.init_scale = take_f64(blob, pos);
  m.vocab_ = take_u64(blob, pos);
  m.classes_ = take_u64(blob, pos);
  if (m.vocab_ == 0 || m.vocab_ > kMaxVocab || m.config_.dim > kMaxDim ||
      m.classes_ == 0 || m.classes_ > m.vocab_ ||
      m.config_.context == 0 || m.config_.context > 64) {
    throw std::runtime_error("lbl load: implausible structure");
  }
  const std::size_t class_bytes = m.vocab_ * sizeof(std::uint32_t);
  if (pos + class_bytes > blob.size()) {
    throw std::runtime_error("lbl load: truncated class map");
  }
  m.class_of_.resize(m.vocab_);
  std::memcpy(m.class_of_.data(), blob.data() + pos, class_bytes);
  pos += class_bytes;
  for (const std::uint32_t c : m.class_of_) {
    if (c >= m.classes_) {
      throw std::runtime_error("lbl load: class id out of range");
    }
  }
  const std::uint64_t param_count = take_u64(blob, pos);
  const std::size_t expect =
      m.pos_offset() + m.config_.context * m.config_.dim;
  if (param_count != expect) {
    throw std::runtime_error("lbl load: parameter count mismatch");
  }
  const std::size_t param_bytes = param_count * sizeof(float);
  if (pos + param_bytes > blob.size()) {
    throw std::runtime_error("lbl load: truncated parameters");
  }
  m.params_.resize(param_count);
  std::memcpy(m.params_.data(), blob.data() + pos, param_bytes);

  // Rebuild the member lists from the class map.
  m.class_start_.assign(m.classes_ + 1, 0);
  for (std::uint32_t w = 0; w < m.vocab_; ++w) {
    ++m.class_start_[m.class_of_[w] + 1];
  }
  for (std::size_t c = 0; c < m.classes_; ++c) {
    m.class_start_[c + 1] += m.class_start_[c];
  }
  m.class_words_.resize(m.vocab_);
  std::vector<std::uint32_t> cursor(m.class_start_.begin(),
                                    m.class_start_.end() - 1);
  for (std::uint32_t w = 0; w < m.vocab_; ++w) {
    m.class_words_[cursor[m.class_of_[w]]++] = w;
  }
  return m;
}

std::uint64_t LblModel::weights_digest() const {
  return util::fnv1a64(std::string_view(
      reinterpret_cast<const char*>(params_.data()),
      params_.size() * sizeof(float)));
}

}  // namespace mcqa::train
