// mcqa — command-line front end for the benchmark pipeline.
//
//   mcqa pipeline [--scale S] [--out DIR]      build + export artifacts
//   mcqa eval     [--scale S] [--model NAME] [--set SET] [--condition C]
//   mcqa inspect  [--scale S] [--id RECORD_ID | --n INDEX]
//   mcqa models                                 list the registry
//   mcqa serve    [--qps Q] [--shards K] ...    replay a workload trace
//                                               through the serving engine
//   mcqa train    [--scale S] [--source traces|chunks] [--epochs N]
//                 [--dim D] [--context W] [--minibatch B] [--out PATH]
//                                               train the log-bilinear
//                                               student and report
//                                               held-out perplexity +
//                                               MCQA accuracy
//   mcqa cache    [--dir PATH] [--scale S] [--prune 1] [--prune-eval 1]
//                 [--json 1]                    checkpoint-cache inventory,
//                                               coverage and mark-and-sweep
//                                               pruning (DESIGN.md §17)
//
// SET: synthetic | astro | astro-nomath.  C: baseline | chunks |
// rt-detail | rt-focused | rt-efficient | all.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/checkpoint.hpp"
#include "core/pipeline.hpp"
#include "core/provenance.hpp"
#include "eval/judge.hpp"
#include "eval/report.hpp"
#include "index/kernels.hpp"
#include "serve/engine.hpp"
#include "util/strings.hpp"

namespace {

using namespace mcqa;

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  static Args parse(int argc, char** argv) {
    Args args;
    if (argc > 1) args.command = argv[1];
    for (int i = 2; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) break;
      args.flags[argv[i] + 2] = argv[i + 1];
    }
    return args;
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
};

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  mcqa models\n"
      "  mcqa pipeline [--scale S] [--out DIR]\n"
      "  mcqa eval     [--scale S] [--model NAME|all] "
      "[--set synthetic|astro|astro-nomath] [--condition C|all]\n"
      "  mcqa inspect  [--scale S] [--n INDEX | --id RECORD_ID]\n"
      "  mcqa provenance [--scale S] [--n INDEX | --id RECORD_ID]\n"
      "  mcqa serve    [--scale S] [--model NAME] [--requests N] [--qps Q]\n"
      "                [--shards K] [--batch B] [--cutoff MS] [--workers W]\n"
      "                [--capacity N] [--deadline MS] [--retries N]\n"
      "                [--failure P] [--replicas R] [--hedge 0|1]\n"
      "                [--hedge-delay MS] [--slow-rate P] [--slow-factor X]\n"
      "                [--replica-failure P] [--reserved N]\n"
      "                [--interactive F] [--hot F] [--heat-window N]\n"
      "                [--json PATH]\n"
      "  mcqa train    [--scale S] [--source traces|chunks] [--epochs N]\n"
      "                [--dim D] [--context W] [--minibatch B] "
      "[--out PATH]\n"
      "  mcqa cache    [--dir PATH] [--scale S] [--prune 1] "
      "[--prune-eval 1] [--json 1]\n"
      "                inventory + per-document coverage of a checkpoint\n"
      "                directory (default $MCQA_CHECKPOINT_DIR); --prune\n"
      "                sweeps blobs unreachable from the current manifest\n"
      "  mcqa --version\n");
  return 2;
}

int cmd_version() {
  using index::kernels::KernelIsa;
  std::printf("mcqa (Automated MCQA Benchmarking at Scale reproduction)\n");
  std::printf("kernel isa:     %.*s%s\n",
              static_cast<int>(
                  index::kernels::isa_name(index::kernels::dispatched_isa())
                      .size()),
              index::kernels::isa_name(index::kernels::dispatched_isa())
                  .data(),
              std::getenv("MCQA_KERNEL_ISA") != nullptr
                  ? " (MCQA_KERNEL_ISA override)"
                  : "");
  std::printf("kernel tile q:  %zu\n", index::kernels::kTileQ);
  std::printf("avx2 table:     %s\n",
              index::kernels::ops_for(KernelIsa::kAvx2) != nullptr
                  ? "compiled+usable"
                  : "unavailable (scalar only)");
  return 0;
}

std::optional<rag::Condition> condition_from_flag(const std::string& name) {
  if (name == "baseline") return rag::Condition::kBaseline;
  if (name == "chunks") return rag::Condition::kChunks;
  if (name == "rt-detail") return rag::Condition::kTraceDetailed;
  if (name == "rt-focused") return rag::Condition::kTraceFocused;
  if (name == "rt-efficient") return rag::Condition::kTraceEfficient;
  return std::nullopt;
}

const std::vector<qgen::McqRecord>& record_set(
    const core::PipelineContext& ctx, const std::string& name) {
  if (name == "astro") return ctx.exam_all();
  if (name == "astro-nomath") return ctx.exam_no_math();
  return ctx.benchmark();
}

int cmd_models() {
  eval::TableWriter table({"Model", "Params", "Year", "Window", "Vendor"});
  for (const auto& card : llm::student_registry()) {
    table.add_row({card.spec.name,
                   util::format_param_count(card.spec.params_billions),
                   std::to_string(card.spec.release_year),
                   std::to_string(card.spec.context_window),
                   card.spec.vendor});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_pipeline(const Args& args) {
  const double scale = args.get_double("scale", 0.01);
  const std::filesystem::path outdir = args.get("out", "out");
  const core::PipelineContext ctx(core::PipelineConfig::paper_scale(scale));
  std::filesystem::create_directories(outdir);

  std::ofstream bench_file(outdir / "benchmark.jsonl");
  for (const auto& r : ctx.benchmark()) {
    bench_file << r.to_json().dump() << "\n";
  }
  for (int m = 0; m < trace::kTraceModeCount; ++m) {
    const auto mode = static_cast<trace::TraceMode>(m);
    std::ofstream trace_file(
        outdir / ("traces_" + std::string(trace::trace_mode_name(mode)) +
                  ".jsonl"));
    for (const auto& t : ctx.traces(mode)) {
      trace_file << t.to_json().dump() << "\n";
    }
  }
  std::ofstream exam_file(outdir / "astro_exam.jsonl");
  for (const auto& r : ctx.exam_all()) {
    exam_file << r.to_json().dump() << "\n";
  }

  const auto& s = ctx.stats();
  std::printf("scale %.3f: %zu docs -> %zu chunks -> %zu questions "
              "(%.1f%% acceptance), %zu/%zu/%zu traces "
              "(detailed/focused/efficient), exam %zu/%zu\n",
              scale, s.documents, s.chunks, s.funnel.accepted,
              100.0 * s.funnel.acceptance_rate(), s.traces_per_mode[0],
              s.traces_per_mode[1], s.traces_per_mode[2],
              ctx.exam_all().size(), ctx.exam_no_math().size());
  std::printf("artifacts in %s/\n", outdir.c_str());
  return 0;
}

int cmd_eval(const Args& args) {
  const double scale = args.get_double("scale", 0.01);
  const std::string model_name = args.get("model", "all");
  const std::string set_name = args.get("set", "synthetic");
  const std::string cond_name = args.get("condition", "all");

  const core::PipelineContext ctx(core::PipelineConfig::paper_scale(scale));
  const auto& records = record_set(ctx, set_name);
  const eval::EvalHarness harness(ctx.rag());

  std::vector<rag::Condition> conditions;
  if (cond_name == "all") {
    conditions = eval::all_conditions();
  } else if (const auto c = condition_from_flag(cond_name)) {
    conditions = {*c};
  } else {
    return usage();
  }

  std::vector<const llm::ModelCard*> cards;
  for (const auto& card : llm::student_registry()) {
    if (model_name == "all" || card.spec.name == model_name) {
      cards.push_back(&card);
    }
  }
  if (cards.empty()) {
    std::fprintf(stderr, "unknown model: %s\n", model_name.c_str());
    return 2;
  }

  std::vector<std::string> headers{"Model"};
  for (const auto c : conditions) {
    headers.emplace_back(rag::condition_name(c));
  }
  eval::TableWriter table(std::move(headers));
  for (const auto* card : cards) {
    const llm::StudentModel model(*card);
    std::vector<std::string> row{card->spec.name};
    for (const auto c : conditions) {
      const eval::Accuracy acc =
          harness.evaluate(model, card->spec, records, c);
      row.push_back(eval::fmt_acc(acc.value()) + " ±" +
                    eval::fmt_acc(acc.ci95_halfwidth()));
    }
    table.add_row(std::move(row));
  }
  std::printf("set=%s (%zu records), scale=%.3f\n\n%s", set_name.c_str(),
              records.size(), scale, table.render().c_str());
  return 0;
}

int cmd_inspect(const Args& args) {
  const double scale = args.get_double("scale", 0.01);
  const core::PipelineContext ctx(core::PipelineConfig::paper_scale(scale));
  const std::string want_id = args.get("id", "");
  const auto n = static_cast<std::size_t>(args.get_double("n", 0));

  const qgen::McqRecord* record = nullptr;
  if (!want_id.empty()) {
    for (const auto& r : ctx.benchmark()) {
      if (r.record_id == want_id) {
        record = &r;
        break;
      }
    }
    if (record == nullptr) {
      std::fprintf(stderr, "no record with id %s\n", want_id.c_str());
      return 2;
    }
  } else {
    if (n >= ctx.benchmark().size()) {
      std::fprintf(stderr, "index out of range (%zu records)\n",
                   ctx.benchmark().size());
      return 2;
    }
    record = &ctx.benchmark()[n];
  }

  std::printf("=== MCQA record (Fig. 2 schema) ===\n%s\n\n",
              record->to_json().dump(2).c_str());
  for (int m = 0; m < trace::kTraceModeCount; ++m) {
    const auto mode = static_cast<trace::TraceMode>(m);
    for (const auto& t : ctx.traces(mode)) {
      if (t.source_record_id != record->record_id) continue;
      std::printf("=== %s trace retrieval text ===\n%s\n\n",
                  std::string(trace::trace_mode_name(mode)).c_str(),
                  t.retrieval_text().c_str());
      break;
    }
  }
  return 0;
}

int cmd_provenance(const Args& args) {
  const double scale = args.get_double("scale", 0.01);
  const core::PipelineContext ctx(core::PipelineConfig::paper_scale(scale));
  const core::ProvenanceIndex index(ctx);

  const std::string want_id = args.get("id", "");
  std::string record_id = want_id;
  if (record_id.empty()) {
    const auto n = static_cast<std::size_t>(args.get_double("n", 0));
    if (n >= ctx.benchmark().size()) {
      std::fprintf(stderr, "index out of range\n");
      return 2;
    }
    record_id = ctx.benchmark()[n].record_id;
  }

  const auto lineage = index.lookup(record_id);
  if (!lineage.has_value()) {
    std::fprintf(stderr, "no record with id %s\n", record_id.c_str());
    return 2;
  }

  std::printf("record   : %s\n", lineage->record->record_id.c_str());
  std::printf("question : %s\n", lineage->record->stem.c_str());
  std::printf("answer   : %s\n", lineage->record->answer.c_str());
  if (lineage->chunk != nullptr) {
    std::printf("chunk    : %s (chunk #%zu of %s, %zu words)\n",
                lineage->chunk->chunk_id.c_str(), lineage->chunk->index,
                lineage->chunk->doc_id.c_str(), lineage->chunk->word_count);
  }
  if (lineage->document != nullptr) {
    std::printf("document : \"%s\" [%s, parsed by %s, quality %.2f]\n",
                lineage->document->title.c_str(),
                lineage->document->kind.c_str(),
                lineage->document->parser_used.c_str(),
                lineage->document->quality);
  }
  if (lineage->raw != nullptr) {
    std::printf("raw file : %zu bytes of %s\n", lineage->raw->bytes.size(),
                std::string(corpus::doc_format_name(lineage->raw->format))
                    .c_str());
  }
  std::printf("facts in source chunk: %zu (probed fact id %u)\n",
              lineage->chunk_facts.size(), lineage->record->fact);
  std::printf("sibling questions from the same document: %zu\n",
              lineage->sibling_questions.size());
  const auto probing = index.questions_probing(lineage->record->fact);
  std::printf("benchmark questions probing the same fact: %zu\n",
              probing.size());
  return 0;
}

// Replay a synthetic workload trace through the serving engine and
// report the shed/latency accounting.  Every number is deterministic
// for a given flag set (simulated clock; see serve/engine.hpp).
int cmd_serve(const Args& args) {
  const double scale = args.get_double("scale", 0.01);
  const std::string model_name = args.get("model", "Llama-3.1-8B-Instruct");
  const llm::ModelCard* card = nullptr;
  for (const auto& c : llm::student_registry()) {
    if (c.spec.name == model_name) card = &c;
  }
  if (card == nullptr) {
    std::fprintf(stderr, "unknown model: %s\n", model_name.c_str());
    return 2;
  }

  serve::ServeConfig cfg;
  cfg.shards = static_cast<std::size_t>(args.get_double("shards", 4));
  cfg.batch_max = static_cast<std::size_t>(args.get_double("batch", 8));
  cfg.batch_cutoff_ms = args.get_double("cutoff", 4.0);
  cfg.workers = static_cast<std::size_t>(args.get_double("workers", 4));
  cfg.queue_capacity =
      static_cast<std::size_t>(args.get_double("capacity", 64));
  cfg.deadline_ms = args.get_double("deadline", 250.0);
  cfg.max_retries = static_cast<std::size_t>(args.get_double("retries", 1));
  cfg.transient_failure_rate = args.get_double("failure", 0.0);
  // Live tier (DESIGN.md §15): replicas, hedged dispatch, priority
  // lanes, shard-heat rebalancing.
  cfg.replicas = static_cast<std::size_t>(args.get_double("replicas", 1));
  cfg.hedge = args.get_double("hedge", 0.0) != 0.0;
  cfg.hedge_delay_ms = args.get_double("hedge-delay", -1.0);
  cfg.replica_slow_rate = args.get_double("slow-rate", 0.0);
  cfg.replica_slow_factor = args.get_double("slow-factor", 4.0);
  cfg.replica_failure_rate = args.get_double("replica-failure", 0.0);
  cfg.reserved_interactive_slots =
      static_cast<std::size_t>(args.get_double("reserved", 0));
  cfg.heat_window =
      static_cast<std::size_t>(args.get_double("heat-window", 0));

  serve::WorkloadConfig wl;
  wl.requests = static_cast<std::size_t>(args.get_double("requests", 512));
  wl.offered_qps = args.get_double("qps", 400.0);
  wl.interactive_fraction = args.get_double("interactive", 1.0);
  wl.hot_fraction = args.get_double("hot", 0.0);

  const core::PipelineContext ctx(core::PipelineConfig::paper_scale(scale));
  rag::RetrievalStores stores;
  stores.chunks = &ctx.chunk_store();
  for (int m = 0; m < trace::kTraceModeCount; ++m) {
    stores.traces[static_cast<std::size_t>(m)] =
        &ctx.trace_store(static_cast<trace::TraceMode>(m));
  }

  const serve::QueryEngine engine(ctx.rag(), stores, card->spec, cfg);
  const auto requests = serve::synth_workload(wl, ctx.benchmark().size());
  serve::ServerMetrics metrics;
  engine.serve(ctx.benchmark(), requests, &metrics);

  std::printf("workload: %zu requests @ %.0f qps over %zu records "
              "(scale %.3f)\n",
              wl.requests, wl.offered_qps, ctx.benchmark().size(), scale);
  std::printf("engine  : %zu shards, batch<=%zu or %.1fms, %zu workers, "
              "capacity %zu, deadline %.0fms\n",
              cfg.shards, cfg.batch_max, cfg.batch_cutoff_ms, cfg.workers,
              cfg.queue_capacity, cfg.deadline_ms);
  std::printf("outcomes: %zu ok, %zu rejected, %zu expired, %zu failed "
              "(%.1f%% completion)\n",
              metrics.completed, metrics.rejected, metrics.expired,
              metrics.failed, 100.0 * metrics.completion_rate());
  std::printf("batches : %zu formed, mean fill %.2f, %zu retries\n",
              metrics.batches, metrics.mean_batch_fill(), metrics.retries);
  std::printf("latency : p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms\n",
              metrics.latency.p50(), metrics.latency.p95(),
              metrics.latency.p99(), metrics.latency.max());
  std::printf("wait    : p50 %.2fms  p99 %.2fms   throughput %.1f qps, "
              "utilization %.1f%%\n",
              metrics.enqueue_wait.p50(), metrics.enqueue_wait.p99(),
              metrics.throughput_qps(), 100.0 * metrics.utilization());
  if (cfg.replicas > 1 || cfg.hedge || cfg.heat_window > 0) {
    std::printf("live    : %zu hedges (%zu won, %zu cancelled, %zu failed), "
                "%zu slow, %zu replica failures, %zu rebalances\n",
                metrics.hedges, metrics.hedge_wins, metrics.hedge_cancels,
                metrics.hedge_failed, metrics.replica_slow,
                metrics.replica_failures, metrics.rebalances);
  }

  const std::string json_path = args.get("json", "");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << metrics.to_json().dump(2) << "\n";
    std::printf("metrics json in %s\n", json_path.c_str());
  }
  return 0;
}

int cmd_train(const Args& args) {
  const double scale = args.get_double("scale", 0.01);
  const std::string source = args.get("source", "traces");
  if (source != "traces" && source != "chunks") return usage();

  const core::PipelineContext ctx(core::PipelineConfig::paper_scale(scale));
  auto [trace_text, chunk_text] = ctx.training_texts();
  const std::string& text = source == "traces" ? trace_text : chunk_text;

  llm::TrainedStudentConfig cfg;
  cfg.train = core::PipelineContext::roster_train_config();
  cfg.train.epochs = static_cast<std::size_t>(
      args.get_double("epochs", static_cast<double>(cfg.train.epochs)));
  cfg.train.model.dim = static_cast<std::size_t>(
      args.get_double("dim", static_cast<double>(cfg.train.model.dim)));
  cfg.train.model.context = static_cast<std::size_t>(args.get_double(
      "context", static_cast<double>(cfg.train.model.context)));
  cfg.train.minibatch = static_cast<std::size_t>(args.get_double(
      "minibatch", static_cast<double>(cfg.train.minibatch)));
  cfg.name = "lbl-" + source;

  std::printf("training %s on %zu KB of %s text...\n", cfg.name.c_str(),
              text.size() / 1024, source.c_str());
  const llm::TrainedStudent student = llm::TrainedStudent::train(text, cfg);
  const train::TrainReport& report = student.report();
  std::printf(
      "trained: %zu params, %zu train tokens, %zu minibatches, "
      "final epoch loss %.4f, held-out perplexity %.2f\n",
      student.model().param_count(), report.train_tokens, report.minibatches,
      report.final_epoch_loss, report.held_out_perplexity);

  const eval::EvalHarness harness(ctx.rag());
  const llm::ModelSpec spec = student.spec();
  const double synth = harness
                           .evaluate(student, spec, ctx.benchmark(),
                                     rag::Condition::kBaseline)
                           .value();
  const double astro = harness
                           .evaluate(student, spec, ctx.exam_no_math(),
                                     rag::Condition::kBaseline)
                           .value();
  std::printf("MCQA accuracy (no retrieval): synthetic %.3f, "
              "astro no-math %.3f\n",
              synth, astro);

  const std::string out_path = args.get("out", "");
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    const std::string blob = student.serialize();
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    std::printf("weights -> %s (%zu bytes, digest %016llx)\n",
                out_path.c_str(), blob.size(),
                static_cast<unsigned long long>(
                    student.model().weights_digest()));
  }
  return 0;
}

// Cache maintenance (DESIGN.md §17): inventory, per-document coverage
// of the configuration at --scale, and deterministic mark-and-sweep
// pruning.  Deriving the doc/manifest keys only needs the KB and the
// corpus bytes — no parsing, embedding or generation runs here.
int cmd_cache(const Args& args) {
  const std::string dir = args.get("dir", core::default_checkpoint_dir());
  if (dir.empty()) {
    std::fprintf(stderr,
                 "mcqa cache: no cache directory (pass --dir or set "
                 "$MCQA_CHECKPOINT_DIR)\n");
    return 2;
  }
  const double scale = args.get_double("scale", 0.01);
  const bool do_prune = args.get_double("prune", 0) != 0;
  const bool prune_eval = args.get_double("prune-eval", 0) != 0;
  const bool as_json = args.get_double("json", 0) != 0;

  core::PipelineConfig cfg = core::PipelineConfig::paper_scale(scale);
  cfg.checkpoint_dir = dir;
  const embed::HashedNGramEmbedder embedder = embed::make_biomed_encoder();
  const corpus::KnowledgeBase kb = corpus::KnowledgeBase::generate(cfg.kb);
  const corpus::SyntheticCorpus corpus = corpus::build_corpus(kb, cfg.corpus);
  const std::vector<std::uint64_t> doc_keys =
      core::derive_doc_keys(cfg, corpus, embedder.dim());
  const std::uint64_t manifest_key =
      core::derive_manifest_key(cfg, embedder.dim());

  const core::ArtifactCache cache(dir);
  std::size_t docs_present = 0;
  for (const std::uint64_t key : doc_keys) {
    if (std::filesystem::exists(cache.path_for("docart", key))) {
      ++docs_present;
    }
  }

  bool manifest_present = false;
  bool manifest_ok = false;
  core::ManifestArtifact manifest;
  if (const auto blob = cache.load("manifest", manifest_key)) {
    manifest_present = true;
    try {
      manifest = core::deserialize_manifest(*blob);
      manifest_ok = true;
    } catch (const std::exception&) {
      cache.note_corrupt();
    }
  }
  const core::ArtifactCache::Stats cs = cache.stats();

  core::PruneReport prune;
  if (do_prune) {
    if (!manifest_ok) {
      std::fprintf(stderr,
                   "mcqa cache: cannot prune — no decodable manifest for "
                   "this configuration (scale %.3f); run a checkpointed "
                   "build first\n",
                   scale);
      return 2;
    }
    prune = core::prune_cache(dir, manifest, manifest_key, prune_eval);
  }

  // Inventory after any prune, so the numbers describe what remains.
  const core::CacheInventory inv = core::inventory_cache(dir);

  if (as_json) {
    std::printf("{\n  \"dir\": \"%s\",\n  \"scale\": %.6f,\n", dir.c_str(),
                scale);
    std::printf("  \"inventory\": [");
    for (std::size_t i = 0; i < inv.rows.size(); ++i) {
      const core::CacheInventoryRow& row = inv.rows[i];
      std::printf("%s\n    {\"prefix\": \"%s\", \"files\": %zu, "
                  "\"bytes\": %llu}",
                  i == 0 ? "" : ",", row.prefix.c_str(), row.files,
                  static_cast<unsigned long long>(row.bytes));
    }
    std::printf("\n  ],\n");
    std::printf("  \"total_files\": %zu,\n  \"total_bytes\": %llu,\n",
                inv.total_files,
                static_cast<unsigned long long>(inv.total_bytes));
    std::printf("  \"docs_total\": %zu,\n  \"docs_present\": %zu,\n",
                doc_keys.size(), docs_present);
    std::printf("  \"manifest_present\": %s,\n  \"manifest_ok\": %s,\n",
                manifest_present ? "true" : "false",
                manifest_ok ? "true" : "false");
    std::printf("  \"corrupt_blobs\": %zu,\n", cs.corrupt_blobs);
    std::printf("  \"pruned\": %s", do_prune ? "true" : "false");
    if (do_prune) {
      std::printf(",\n  \"prune\": {\"scanned\": %zu, \"kept\": %zu, "
                  "\"removed\": %zu, \"removed_bytes\": %llu}",
                  prune.scanned, prune.kept, prune.removed,
                  static_cast<unsigned long long>(prune.removed_bytes));
    }
    std::printf("\n}\n");
    return 0;
  }

  eval::TableWriter table({"Blob", "Files", "Bytes"});
  for (const core::CacheInventoryRow& row : inv.rows) {
    table.add_row({row.prefix, std::to_string(row.files),
                   std::to_string(row.bytes)});
  }
  table.add_row({"(total)", std::to_string(inv.total_files),
                 std::to_string(inv.total_bytes)});
  std::printf("cache %s\n\n%s\n", dir.c_str(), table.render().c_str());
  std::printf("configuration @ scale %.3f: %zu/%zu per-document artifacts "
              "present, manifest %s\n",
              scale, docs_present, doc_keys.size(),
              !manifest_present ? "absent"
                                : (manifest_ok ? "ok" : "CORRUPT"));
  if (cs.corrupt_blobs > 0) {
    std::printf("corrupt blobs encountered: %zu\n", cs.corrupt_blobs);
  }
  if (do_prune) {
    std::printf("prune: scanned %zu, kept %zu, removed %zu (%llu bytes)%s\n",
                prune.scanned, prune.kept, prune.removed,
                static_cast<unsigned long long>(prune.removed_bytes),
                prune_eval ? " [eval cells included]" : "");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = Args::parse(argc, argv);
  if (args.command == "models") return cmd_models();
  if (args.command == "pipeline") return cmd_pipeline(args);
  if (args.command == "eval") return cmd_eval(args);
  if (args.command == "inspect") return cmd_inspect(args);
  if (args.command == "provenance") return cmd_provenance(args);
  if (args.command == "serve") return cmd_serve(args);
  if (args.command == "train") return cmd_train(args);
  if (args.command == "cache") return cmd_cache(args);
  if (args.command == "--version" || args.command == "version") {
    return cmd_version();
  }
  return usage();
}
