# Empty dependencies file for continuous_expansion.
# This may be replaced when dependencies are built.
