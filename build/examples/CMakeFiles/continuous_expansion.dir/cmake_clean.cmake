file(REMOVE_RECURSE
  "CMakeFiles/continuous_expansion.dir/continuous_expansion.cpp.o"
  "CMakeFiles/continuous_expansion.dir/continuous_expansion.cpp.o.d"
  "continuous_expansion"
  "continuous_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/continuous_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
