# Empty compiler generated dependencies file for build_benchmark.
# This may be replaced when dependencies are built.
