# Empty compiler generated dependencies file for domain_adaptation.
# This may be replaced when dependencies are built.
