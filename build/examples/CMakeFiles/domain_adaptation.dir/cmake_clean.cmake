file(REMOVE_RECURSE
  "CMakeFiles/domain_adaptation.dir/domain_adaptation.cpp.o"
  "CMakeFiles/domain_adaptation.dir/domain_adaptation.cpp.o.d"
  "domain_adaptation"
  "domain_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domain_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
