# Empty compiler generated dependencies file for retrieval_explorer.
# This may be replaced when dependencies are built.
