file(REMOVE_RECURSE
  "CMakeFiles/retrieval_explorer.dir/retrieval_explorer.cpp.o"
  "CMakeFiles/retrieval_explorer.dir/retrieval_explorer.cpp.o.d"
  "retrieval_explorer"
  "retrieval_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retrieval_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
