file(REMOVE_RECURSE
  "../bench/bench_fig5_astro_gains"
  "../bench/bench_fig5_astro_gains.pdb"
  "CMakeFiles/bench_fig5_astro_gains.dir/bench_fig5_astro_gains.cpp.o"
  "CMakeFiles/bench_fig5_astro_gains.dir/bench_fig5_astro_gains.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_astro_gains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
