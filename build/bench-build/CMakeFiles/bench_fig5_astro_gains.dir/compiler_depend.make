# Empty compiler generated dependencies file for bench_fig5_astro_gains.
# This may be replaced when dependencies are built.
