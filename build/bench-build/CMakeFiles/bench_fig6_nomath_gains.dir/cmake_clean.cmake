file(REMOVE_RECURSE
  "../bench/bench_fig6_nomath_gains"
  "../bench/bench_fig6_nomath_gains.pdb"
  "CMakeFiles/bench_fig6_nomath_gains.dir/bench_fig6_nomath_gains.cpp.o"
  "CMakeFiles/bench_fig6_nomath_gains.dir/bench_fig6_nomath_gains.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_nomath_gains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
