# Empty dependencies file for bench_fig6_nomath_gains.
# This may be replaced when dependencies are built.
