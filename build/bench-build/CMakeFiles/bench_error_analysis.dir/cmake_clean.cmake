file(REMOVE_RECURSE
  "../bench/bench_error_analysis"
  "../bench/bench_error_analysis.pdb"
  "CMakeFiles/bench_error_analysis.dir/bench_error_analysis.cpp.o"
  "CMakeFiles/bench_error_analysis.dir/bench_error_analysis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_error_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
