# Empty compiler generated dependencies file for bench_table1_models.
# This may be replaced when dependencies are built.
