file(REMOVE_RECURSE
  "../bench/bench_table4_astro_nomath"
  "../bench/bench_table4_astro_nomath.pdb"
  "CMakeFiles/bench_table4_astro_nomath.dir/bench_table4_astro_nomath.cpp.o"
  "CMakeFiles/bench_table4_astro_nomath.dir/bench_table4_astro_nomath.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_astro_nomath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
