# Empty compiler generated dependencies file for bench_table4_astro_nomath.
# This may be replaced when dependencies are built.
