file(REMOVE_RECURSE
  "../bench/bench_retrieval_ablation"
  "../bench/bench_retrieval_ablation.pdb"
  "CMakeFiles/bench_retrieval_ablation.dir/bench_retrieval_ablation.cpp.o"
  "CMakeFiles/bench_retrieval_ablation.dir/bench_retrieval_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_retrieval_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
