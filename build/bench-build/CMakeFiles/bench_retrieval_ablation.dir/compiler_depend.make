# Empty compiler generated dependencies file for bench_retrieval_ablation.
# This may be replaced when dependencies are built.
