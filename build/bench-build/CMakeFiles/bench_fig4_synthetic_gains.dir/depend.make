# Empty dependencies file for bench_fig4_synthetic_gains.
# This may be replaced when dependencies are built.
