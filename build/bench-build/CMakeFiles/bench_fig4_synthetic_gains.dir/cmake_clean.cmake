file(REMOVE_RECURSE
  "../bench/bench_fig4_synthetic_gains"
  "../bench/bench_fig4_synthetic_gains.pdb"
  "CMakeFiles/bench_fig4_synthetic_gains.dir/bench_fig4_synthetic_gains.cpp.o"
  "CMakeFiles/bench_fig4_synthetic_gains.dir/bench_fig4_synthetic_gains.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_synthetic_gains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
