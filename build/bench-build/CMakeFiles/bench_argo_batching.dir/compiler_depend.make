# Empty compiler generated dependencies file for bench_argo_batching.
# This may be replaced when dependencies are built.
