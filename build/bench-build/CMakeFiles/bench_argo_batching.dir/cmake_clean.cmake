file(REMOVE_RECURSE
  "../bench/bench_argo_batching"
  "../bench/bench_argo_batching.pdb"
  "CMakeFiles/bench_argo_batching.dir/bench_argo_batching.cpp.o"
  "CMakeFiles/bench_argo_batching.dir/bench_argo_batching.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_argo_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
