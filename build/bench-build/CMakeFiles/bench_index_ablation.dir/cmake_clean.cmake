file(REMOVE_RECURSE
  "../bench/bench_index_ablation"
  "../bench/bench_index_ablation.pdb"
  "CMakeFiles/bench_index_ablation.dir/bench_index_ablation.cpp.o"
  "CMakeFiles/bench_index_ablation.dir/bench_index_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_index_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
