# Empty dependencies file for bench_index_ablation.
# This may be replaced when dependencies are built.
