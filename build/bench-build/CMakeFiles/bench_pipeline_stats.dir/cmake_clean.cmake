file(REMOVE_RECURSE
  "../bench/bench_pipeline_stats"
  "../bench/bench_pipeline_stats.pdb"
  "CMakeFiles/bench_pipeline_stats.dir/bench_pipeline_stats.cpp.o"
  "CMakeFiles/bench_pipeline_stats.dir/bench_pipeline_stats.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pipeline_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
