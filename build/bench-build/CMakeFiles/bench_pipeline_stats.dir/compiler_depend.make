# Empty compiler generated dependencies file for bench_pipeline_stats.
# This may be replaced when dependencies are built.
