# Empty compiler generated dependencies file for bench_table3_astro_all.
# This may be replaced when dependencies are built.
