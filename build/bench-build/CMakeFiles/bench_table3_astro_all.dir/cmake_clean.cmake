file(REMOVE_RECURSE
  "../bench/bench_table3_astro_all"
  "../bench/bench_table3_astro_all.pdb"
  "CMakeFiles/bench_table3_astro_all.dir/bench_table3_astro_all.cpp.o"
  "CMakeFiles/bench_table3_astro_all.dir/bench_table3_astro_all.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_astro_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
