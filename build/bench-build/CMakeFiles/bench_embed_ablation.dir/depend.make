# Empty dependencies file for bench_embed_ablation.
# This may be replaced when dependencies are built.
