file(REMOVE_RECURSE
  "../bench/bench_embed_ablation"
  "../bench/bench_embed_ablation.pdb"
  "CMakeFiles/bench_embed_ablation.dir/bench_embed_ablation.cpp.o"
  "CMakeFiles/bench_embed_ablation.dir/bench_embed_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_embed_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
