file(REMOVE_RECURSE
  "../bench/bench_table2_synthetic"
  "../bench/bench_table2_synthetic.pdb"
  "CMakeFiles/bench_table2_synthetic.dir/bench_table2_synthetic.cpp.o"
  "CMakeFiles/bench_table2_synthetic.dir/bench_table2_synthetic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
