file(REMOVE_RECURSE
  "../bench/bench_trace_pretraining"
  "../bench/bench_trace_pretraining.pdb"
  "CMakeFiles/bench_trace_pretraining.dir/bench_trace_pretraining.cpp.o"
  "CMakeFiles/bench_trace_pretraining.dir/bench_trace_pretraining.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_pretraining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
