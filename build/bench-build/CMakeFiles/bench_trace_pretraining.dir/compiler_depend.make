# Empty compiler generated dependencies file for bench_trace_pretraining.
# This may be replaced when dependencies are built.
