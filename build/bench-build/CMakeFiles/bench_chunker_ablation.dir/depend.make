# Empty dependencies file for bench_chunker_ablation.
# This may be replaced when dependencies are built.
