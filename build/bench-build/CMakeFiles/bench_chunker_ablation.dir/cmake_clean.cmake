file(REMOVE_RECURSE
  "../bench/bench_chunker_ablation"
  "../bench/bench_chunker_ablation.pdb"
  "CMakeFiles/bench_chunker_ablation.dir/bench_chunker_ablation.cpp.o"
  "CMakeFiles/bench_chunker_ablation.dir/bench_chunker_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chunker_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
