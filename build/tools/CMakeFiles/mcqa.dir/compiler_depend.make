# Empty compiler generated dependencies file for mcqa.
# This may be replaced when dependencies are built.
