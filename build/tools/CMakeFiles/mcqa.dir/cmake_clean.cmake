file(REMOVE_RECURSE
  "CMakeFiles/mcqa.dir/mcqa_cli.cpp.o"
  "CMakeFiles/mcqa.dir/mcqa_cli.cpp.o.d"
  "mcqa"
  "mcqa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcqa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
