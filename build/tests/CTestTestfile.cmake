# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/parse_test[1]_include.cmake")
include("/root/repo/build/tests/embed_test[1]_include.cmake")
include("/root/repo/build/tests/chunk_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_test[1]_include.cmake")
include("/root/repo/build/tests/llm_test[1]_include.cmake")
include("/root/repo/build/tests/qgen_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/rag_test[1]_include.cmake")
include("/root/repo/build/tests/exam_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/provenance_test[1]_include.cmake")
include("/root/repo/build/tests/expansion_test[1]_include.cmake")
include("/root/repo/build/tests/proxy_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
