file(REMOVE_RECURSE
  "CMakeFiles/embed_test.dir/embed_test.cpp.o"
  "CMakeFiles/embed_test.dir/embed_test.cpp.o.d"
  "embed_test"
  "embed_test.pdb"
  "embed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
