file(REMOVE_RECURSE
  "CMakeFiles/parse_test.dir/parse_test.cpp.o"
  "CMakeFiles/parse_test.dir/parse_test.cpp.o.d"
  "parse_test"
  "parse_test.pdb"
  "parse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
