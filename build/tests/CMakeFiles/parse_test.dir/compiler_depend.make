# Empty compiler generated dependencies file for parse_test.
# This may be replaced when dependencies are built.
