# Empty dependencies file for exam_test.
# This may be replaced when dependencies are built.
