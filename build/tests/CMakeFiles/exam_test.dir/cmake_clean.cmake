file(REMOVE_RECURSE
  "CMakeFiles/exam_test.dir/exam_test.cpp.o"
  "CMakeFiles/exam_test.dir/exam_test.cpp.o.d"
  "exam_test"
  "exam_test.pdb"
  "exam_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exam_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
