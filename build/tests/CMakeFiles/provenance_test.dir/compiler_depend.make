# Empty compiler generated dependencies file for provenance_test.
# This may be replaced when dependencies are built.
