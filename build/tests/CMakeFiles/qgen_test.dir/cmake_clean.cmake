file(REMOVE_RECURSE
  "CMakeFiles/qgen_test.dir/qgen_test.cpp.o"
  "CMakeFiles/qgen_test.dir/qgen_test.cpp.o.d"
  "qgen_test"
  "qgen_test.pdb"
  "qgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
