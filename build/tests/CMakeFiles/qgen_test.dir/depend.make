# Empty dependencies file for qgen_test.
# This may be replaced when dependencies are built.
