# Empty dependencies file for proxy_test.
# This may be replaced when dependencies are built.
