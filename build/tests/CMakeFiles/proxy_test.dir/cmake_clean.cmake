file(REMOVE_RECURSE
  "CMakeFiles/proxy_test.dir/proxy_test.cpp.o"
  "CMakeFiles/proxy_test.dir/proxy_test.cpp.o.d"
  "proxy_test"
  "proxy_test.pdb"
  "proxy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
