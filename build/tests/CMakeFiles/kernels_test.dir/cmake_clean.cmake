file(REMOVE_RECURSE
  "CMakeFiles/kernels_test.dir/kernels_test.cpp.o"
  "CMakeFiles/kernels_test.dir/kernels_test.cpp.o.d"
  "kernels_test"
  "kernels_test.pdb"
  "kernels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
