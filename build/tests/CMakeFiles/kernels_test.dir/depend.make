# Empty dependencies file for kernels_test.
# This may be replaced when dependencies are built.
