file(REMOVE_RECURSE
  "CMakeFiles/llm_test.dir/llm_test.cpp.o"
  "CMakeFiles/llm_test.dir/llm_test.cpp.o.d"
  "llm_test"
  "llm_test.pdb"
  "llm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
