file(REMOVE_RECURSE
  "CMakeFiles/rag_test.dir/rag_test.cpp.o"
  "CMakeFiles/rag_test.dir/rag_test.cpp.o.d"
  "rag_test"
  "rag_test.pdb"
  "rag_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
