file(REMOVE_RECURSE
  "libmcqa_text.a"
)
