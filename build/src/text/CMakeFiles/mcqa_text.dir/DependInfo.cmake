
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/bpe.cpp" "src/text/CMakeFiles/mcqa_text.dir/bpe.cpp.o" "gcc" "src/text/CMakeFiles/mcqa_text.dir/bpe.cpp.o.d"
  "/root/repo/src/text/normalize.cpp" "src/text/CMakeFiles/mcqa_text.dir/normalize.cpp.o" "gcc" "src/text/CMakeFiles/mcqa_text.dir/normalize.cpp.o.d"
  "/root/repo/src/text/sentence.cpp" "src/text/CMakeFiles/mcqa_text.dir/sentence.cpp.o" "gcc" "src/text/CMakeFiles/mcqa_text.dir/sentence.cpp.o.d"
  "/root/repo/src/text/tokenizer.cpp" "src/text/CMakeFiles/mcqa_text.dir/tokenizer.cpp.o" "gcc" "src/text/CMakeFiles/mcqa_text.dir/tokenizer.cpp.o.d"
  "/root/repo/src/text/vocab.cpp" "src/text/CMakeFiles/mcqa_text.dir/vocab.cpp.o" "gcc" "src/text/CMakeFiles/mcqa_text.dir/vocab.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mcqa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
