# Empty dependencies file for mcqa_text.
# This may be replaced when dependencies are built.
