file(REMOVE_RECURSE
  "CMakeFiles/mcqa_text.dir/bpe.cpp.o"
  "CMakeFiles/mcqa_text.dir/bpe.cpp.o.d"
  "CMakeFiles/mcqa_text.dir/normalize.cpp.o"
  "CMakeFiles/mcqa_text.dir/normalize.cpp.o.d"
  "CMakeFiles/mcqa_text.dir/sentence.cpp.o"
  "CMakeFiles/mcqa_text.dir/sentence.cpp.o.d"
  "CMakeFiles/mcqa_text.dir/tokenizer.cpp.o"
  "CMakeFiles/mcqa_text.dir/tokenizer.cpp.o.d"
  "CMakeFiles/mcqa_text.dir/vocab.cpp.o"
  "CMakeFiles/mcqa_text.dir/vocab.cpp.o.d"
  "libmcqa_text.a"
  "libmcqa_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcqa_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
