file(REMOVE_RECURSE
  "CMakeFiles/mcqa_qgen.dir/benchmark_builder.cpp.o"
  "CMakeFiles/mcqa_qgen.dir/benchmark_builder.cpp.o.d"
  "CMakeFiles/mcqa_qgen.dir/mcq_record.cpp.o"
  "CMakeFiles/mcqa_qgen.dir/mcq_record.cpp.o.d"
  "libmcqa_qgen.a"
  "libmcqa_qgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcqa_qgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
