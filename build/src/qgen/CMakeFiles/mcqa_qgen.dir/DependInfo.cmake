
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qgen/benchmark_builder.cpp" "src/qgen/CMakeFiles/mcqa_qgen.dir/benchmark_builder.cpp.o" "gcc" "src/qgen/CMakeFiles/mcqa_qgen.dir/benchmark_builder.cpp.o.d"
  "/root/repo/src/qgen/mcq_record.cpp" "src/qgen/CMakeFiles/mcqa_qgen.dir/mcq_record.cpp.o" "gcc" "src/qgen/CMakeFiles/mcqa_qgen.dir/mcq_record.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/json/CMakeFiles/mcqa_json.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/mcqa_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/chunk/CMakeFiles/mcqa_chunk.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/mcqa_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mcqa_index.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/mcqa_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/parse/CMakeFiles/mcqa_parse.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/mcqa_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/mcqa_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcqa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
