# Empty compiler generated dependencies file for mcqa_qgen.
# This may be replaced when dependencies are built.
