file(REMOVE_RECURSE
  "libmcqa_qgen.a"
)
