# Empty compiler generated dependencies file for mcqa_core.
# This may be replaced when dependencies are built.
