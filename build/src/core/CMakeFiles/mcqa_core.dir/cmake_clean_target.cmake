file(REMOVE_RECURSE
  "libmcqa_core.a"
)
