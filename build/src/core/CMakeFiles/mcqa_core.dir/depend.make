# Empty dependencies file for mcqa_core.
# This may be replaced when dependencies are built.
