file(REMOVE_RECURSE
  "CMakeFiles/mcqa_core.dir/expansion.cpp.o"
  "CMakeFiles/mcqa_core.dir/expansion.cpp.o.d"
  "CMakeFiles/mcqa_core.dir/pipeline.cpp.o"
  "CMakeFiles/mcqa_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/mcqa_core.dir/provenance.cpp.o"
  "CMakeFiles/mcqa_core.dir/provenance.cpp.o.d"
  "CMakeFiles/mcqa_core.dir/streaming.cpp.o"
  "CMakeFiles/mcqa_core.dir/streaming.cpp.o.d"
  "libmcqa_core.a"
  "libmcqa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcqa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
