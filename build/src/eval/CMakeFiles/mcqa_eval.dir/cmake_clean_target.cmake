file(REMOVE_RECURSE
  "libmcqa_eval.a"
)
