file(REMOVE_RECURSE
  "CMakeFiles/mcqa_eval.dir/harness.cpp.o"
  "CMakeFiles/mcqa_eval.dir/harness.cpp.o.d"
  "CMakeFiles/mcqa_eval.dir/judge.cpp.o"
  "CMakeFiles/mcqa_eval.dir/judge.cpp.o.d"
  "CMakeFiles/mcqa_eval.dir/paper_reference.cpp.o"
  "CMakeFiles/mcqa_eval.dir/paper_reference.cpp.o.d"
  "CMakeFiles/mcqa_eval.dir/report.cpp.o"
  "CMakeFiles/mcqa_eval.dir/report.cpp.o.d"
  "libmcqa_eval.a"
  "libmcqa_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcqa_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
