# Empty dependencies file for mcqa_eval.
# This may be replaced when dependencies are built.
