
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parse/adaptive.cpp" "src/parse/CMakeFiles/mcqa_parse.dir/adaptive.cpp.o" "gcc" "src/parse/CMakeFiles/mcqa_parse.dir/adaptive.cpp.o.d"
  "/root/repo/src/parse/document.cpp" "src/parse/CMakeFiles/mcqa_parse.dir/document.cpp.o" "gcc" "src/parse/CMakeFiles/mcqa_parse.dir/document.cpp.o.d"
  "/root/repo/src/parse/parsers.cpp" "src/parse/CMakeFiles/mcqa_parse.dir/parsers.cpp.o" "gcc" "src/parse/CMakeFiles/mcqa_parse.dir/parsers.cpp.o.d"
  "/root/repo/src/parse/quality.cpp" "src/parse/CMakeFiles/mcqa_parse.dir/quality.cpp.o" "gcc" "src/parse/CMakeFiles/mcqa_parse.dir/quality.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mcqa_util.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/mcqa_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
