file(REMOVE_RECURSE
  "CMakeFiles/mcqa_parse.dir/adaptive.cpp.o"
  "CMakeFiles/mcqa_parse.dir/adaptive.cpp.o.d"
  "CMakeFiles/mcqa_parse.dir/document.cpp.o"
  "CMakeFiles/mcqa_parse.dir/document.cpp.o.d"
  "CMakeFiles/mcqa_parse.dir/parsers.cpp.o"
  "CMakeFiles/mcqa_parse.dir/parsers.cpp.o.d"
  "CMakeFiles/mcqa_parse.dir/quality.cpp.o"
  "CMakeFiles/mcqa_parse.dir/quality.cpp.o.d"
  "libmcqa_parse.a"
  "libmcqa_parse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcqa_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
