# Empty dependencies file for mcqa_parse.
# This may be replaced when dependencies are built.
