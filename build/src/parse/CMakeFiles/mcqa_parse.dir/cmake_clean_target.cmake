file(REMOVE_RECURSE
  "libmcqa_parse.a"
)
