# Empty dependencies file for mcqa_trace.
# This may be replaced when dependencies are built.
