file(REMOVE_RECURSE
  "libmcqa_trace.a"
)
