file(REMOVE_RECURSE
  "CMakeFiles/mcqa_trace.dir/trace_generator.cpp.o"
  "CMakeFiles/mcqa_trace.dir/trace_generator.cpp.o.d"
  "CMakeFiles/mcqa_trace.dir/trace_grading.cpp.o"
  "CMakeFiles/mcqa_trace.dir/trace_grading.cpp.o.d"
  "CMakeFiles/mcqa_trace.dir/trace_record.cpp.o"
  "CMakeFiles/mcqa_trace.dir/trace_record.cpp.o.d"
  "libmcqa_trace.a"
  "libmcqa_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcqa_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
