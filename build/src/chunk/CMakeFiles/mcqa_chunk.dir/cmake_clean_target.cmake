file(REMOVE_RECURSE
  "libmcqa_chunk.a"
)
