# Empty compiler generated dependencies file for mcqa_chunk.
# This may be replaced when dependencies are built.
