file(REMOVE_RECURSE
  "CMakeFiles/mcqa_chunk.dir/chunker.cpp.o"
  "CMakeFiles/mcqa_chunk.dir/chunker.cpp.o.d"
  "libmcqa_chunk.a"
  "libmcqa_chunk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcqa_chunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
