file(REMOVE_RECURSE
  "libmcqa_exam.a"
)
