file(REMOVE_RECURSE
  "CMakeFiles/mcqa_exam.dir/astro_exam.cpp.o"
  "CMakeFiles/mcqa_exam.dir/astro_exam.cpp.o.d"
  "libmcqa_exam.a"
  "libmcqa_exam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcqa_exam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
