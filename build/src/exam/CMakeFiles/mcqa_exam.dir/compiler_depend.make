# Empty compiler generated dependencies file for mcqa_exam.
# This may be replaced when dependencies are built.
