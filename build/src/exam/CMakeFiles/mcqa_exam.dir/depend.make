# Empty dependencies file for mcqa_exam.
# This may be replaced when dependencies are built.
