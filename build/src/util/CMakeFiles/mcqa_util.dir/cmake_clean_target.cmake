file(REMOVE_RECURSE
  "libmcqa_util.a"
)
