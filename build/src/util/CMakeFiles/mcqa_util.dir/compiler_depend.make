# Empty compiler generated dependencies file for mcqa_util.
# This may be replaced when dependencies are built.
