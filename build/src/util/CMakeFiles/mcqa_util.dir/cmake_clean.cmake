file(REMOVE_RECURSE
  "CMakeFiles/mcqa_util.dir/hash.cpp.o"
  "CMakeFiles/mcqa_util.dir/hash.cpp.o.d"
  "CMakeFiles/mcqa_util.dir/histogram.cpp.o"
  "CMakeFiles/mcqa_util.dir/histogram.cpp.o.d"
  "CMakeFiles/mcqa_util.dir/log.cpp.o"
  "CMakeFiles/mcqa_util.dir/log.cpp.o.d"
  "CMakeFiles/mcqa_util.dir/rng.cpp.o"
  "CMakeFiles/mcqa_util.dir/rng.cpp.o.d"
  "CMakeFiles/mcqa_util.dir/strings.cpp.o"
  "CMakeFiles/mcqa_util.dir/strings.cpp.o.d"
  "libmcqa_util.a"
  "libmcqa_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcqa_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
