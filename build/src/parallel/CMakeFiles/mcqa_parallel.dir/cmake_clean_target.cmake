file(REMOVE_RECURSE
  "libmcqa_parallel.a"
)
