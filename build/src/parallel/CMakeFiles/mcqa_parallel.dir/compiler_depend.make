# Empty compiler generated dependencies file for mcqa_parallel.
# This may be replaced when dependencies are built.
