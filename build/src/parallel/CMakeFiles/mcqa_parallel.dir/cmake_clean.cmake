file(REMOVE_RECURSE
  "CMakeFiles/mcqa_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/mcqa_parallel.dir/thread_pool.cpp.o.d"
  "libmcqa_parallel.a"
  "libmcqa_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcqa_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
