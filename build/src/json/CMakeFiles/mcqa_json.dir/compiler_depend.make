# Empty compiler generated dependencies file for mcqa_json.
# This may be replaced when dependencies are built.
