file(REMOVE_RECURSE
  "CMakeFiles/mcqa_json.dir/json.cpp.o"
  "CMakeFiles/mcqa_json.dir/json.cpp.o.d"
  "libmcqa_json.a"
  "libmcqa_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcqa_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
