
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/json/json.cpp" "src/json/CMakeFiles/mcqa_json.dir/json.cpp.o" "gcc" "src/json/CMakeFiles/mcqa_json.dir/json.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mcqa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
