file(REMOVE_RECURSE
  "libmcqa_json.a"
)
