# Empty compiler generated dependencies file for mcqa_rag.
# This may be replaced when dependencies are built.
