file(REMOVE_RECURSE
  "libmcqa_rag.a"
)
