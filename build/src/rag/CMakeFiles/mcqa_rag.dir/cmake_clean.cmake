file(REMOVE_RECURSE
  "CMakeFiles/mcqa_rag.dir/rag_pipeline.cpp.o"
  "CMakeFiles/mcqa_rag.dir/rag_pipeline.cpp.o.d"
  "libmcqa_rag.a"
  "libmcqa_rag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcqa_rag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
