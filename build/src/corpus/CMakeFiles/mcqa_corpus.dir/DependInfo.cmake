
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/corpus_builder.cpp" "src/corpus/CMakeFiles/mcqa_corpus.dir/corpus_builder.cpp.o" "gcc" "src/corpus/CMakeFiles/mcqa_corpus.dir/corpus_builder.cpp.o.d"
  "/root/repo/src/corpus/fact_matcher.cpp" "src/corpus/CMakeFiles/mcqa_corpus.dir/fact_matcher.cpp.o" "gcc" "src/corpus/CMakeFiles/mcqa_corpus.dir/fact_matcher.cpp.o.d"
  "/root/repo/src/corpus/knowledge_base.cpp" "src/corpus/CMakeFiles/mcqa_corpus.dir/knowledge_base.cpp.o" "gcc" "src/corpus/CMakeFiles/mcqa_corpus.dir/knowledge_base.cpp.o.d"
  "/root/repo/src/corpus/paper_generator.cpp" "src/corpus/CMakeFiles/mcqa_corpus.dir/paper_generator.cpp.o" "gcc" "src/corpus/CMakeFiles/mcqa_corpus.dir/paper_generator.cpp.o.d"
  "/root/repo/src/corpus/realization.cpp" "src/corpus/CMakeFiles/mcqa_corpus.dir/realization.cpp.o" "gcc" "src/corpus/CMakeFiles/mcqa_corpus.dir/realization.cpp.o.d"
  "/root/repo/src/corpus/spdf.cpp" "src/corpus/CMakeFiles/mcqa_corpus.dir/spdf.cpp.o" "gcc" "src/corpus/CMakeFiles/mcqa_corpus.dir/spdf.cpp.o.d"
  "/root/repo/src/corpus/term_banks.cpp" "src/corpus/CMakeFiles/mcqa_corpus.dir/term_banks.cpp.o" "gcc" "src/corpus/CMakeFiles/mcqa_corpus.dir/term_banks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mcqa_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/mcqa_text.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/mcqa_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
