# Empty dependencies file for mcqa_corpus.
# This may be replaced when dependencies are built.
