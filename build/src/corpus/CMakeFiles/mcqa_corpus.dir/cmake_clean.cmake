file(REMOVE_RECURSE
  "CMakeFiles/mcqa_corpus.dir/corpus_builder.cpp.o"
  "CMakeFiles/mcqa_corpus.dir/corpus_builder.cpp.o.d"
  "CMakeFiles/mcqa_corpus.dir/fact_matcher.cpp.o"
  "CMakeFiles/mcqa_corpus.dir/fact_matcher.cpp.o.d"
  "CMakeFiles/mcqa_corpus.dir/knowledge_base.cpp.o"
  "CMakeFiles/mcqa_corpus.dir/knowledge_base.cpp.o.d"
  "CMakeFiles/mcqa_corpus.dir/paper_generator.cpp.o"
  "CMakeFiles/mcqa_corpus.dir/paper_generator.cpp.o.d"
  "CMakeFiles/mcqa_corpus.dir/realization.cpp.o"
  "CMakeFiles/mcqa_corpus.dir/realization.cpp.o.d"
  "CMakeFiles/mcqa_corpus.dir/spdf.cpp.o"
  "CMakeFiles/mcqa_corpus.dir/spdf.cpp.o.d"
  "CMakeFiles/mcqa_corpus.dir/term_banks.cpp.o"
  "CMakeFiles/mcqa_corpus.dir/term_banks.cpp.o.d"
  "libmcqa_corpus.a"
  "libmcqa_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcqa_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
