file(REMOVE_RECURSE
  "libmcqa_corpus.a"
)
