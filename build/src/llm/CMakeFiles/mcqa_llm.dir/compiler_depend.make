# Empty compiler generated dependencies file for mcqa_llm.
# This may be replaced when dependencies are built.
