file(REMOVE_RECURSE
  "CMakeFiles/mcqa_llm.dir/argo_proxy.cpp.o"
  "CMakeFiles/mcqa_llm.dir/argo_proxy.cpp.o.d"
  "CMakeFiles/mcqa_llm.dir/model_spec.cpp.o"
  "CMakeFiles/mcqa_llm.dir/model_spec.cpp.o.d"
  "CMakeFiles/mcqa_llm.dir/ngram_lm.cpp.o"
  "CMakeFiles/mcqa_llm.dir/ngram_lm.cpp.o.d"
  "CMakeFiles/mcqa_llm.dir/student_model.cpp.o"
  "CMakeFiles/mcqa_llm.dir/student_model.cpp.o.d"
  "CMakeFiles/mcqa_llm.dir/teacher_model.cpp.o"
  "CMakeFiles/mcqa_llm.dir/teacher_model.cpp.o.d"
  "libmcqa_llm.a"
  "libmcqa_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcqa_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
