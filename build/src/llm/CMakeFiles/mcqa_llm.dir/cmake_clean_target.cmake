file(REMOVE_RECURSE
  "libmcqa_llm.a"
)
