file(REMOVE_RECURSE
  "CMakeFiles/mcqa_index.dir/index_io.cpp.o"
  "CMakeFiles/mcqa_index.dir/index_io.cpp.o.d"
  "CMakeFiles/mcqa_index.dir/kernels.cpp.o"
  "CMakeFiles/mcqa_index.dir/kernels.cpp.o.d"
  "CMakeFiles/mcqa_index.dir/vector_index.cpp.o"
  "CMakeFiles/mcqa_index.dir/vector_index.cpp.o.d"
  "CMakeFiles/mcqa_index.dir/vector_store.cpp.o"
  "CMakeFiles/mcqa_index.dir/vector_store.cpp.o.d"
  "libmcqa_index.a"
  "libmcqa_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcqa_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
