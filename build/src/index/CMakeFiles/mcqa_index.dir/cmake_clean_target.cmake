file(REMOVE_RECURSE
  "libmcqa_index.a"
)
