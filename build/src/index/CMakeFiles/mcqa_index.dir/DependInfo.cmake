
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/index_io.cpp" "src/index/CMakeFiles/mcqa_index.dir/index_io.cpp.o" "gcc" "src/index/CMakeFiles/mcqa_index.dir/index_io.cpp.o.d"
  "/root/repo/src/index/kernels.cpp" "src/index/CMakeFiles/mcqa_index.dir/kernels.cpp.o" "gcc" "src/index/CMakeFiles/mcqa_index.dir/kernels.cpp.o.d"
  "/root/repo/src/index/vector_index.cpp" "src/index/CMakeFiles/mcqa_index.dir/vector_index.cpp.o" "gcc" "src/index/CMakeFiles/mcqa_index.dir/vector_index.cpp.o.d"
  "/root/repo/src/index/vector_store.cpp" "src/index/CMakeFiles/mcqa_index.dir/vector_store.cpp.o" "gcc" "src/index/CMakeFiles/mcqa_index.dir/vector_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mcqa_util.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/mcqa_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/mcqa_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/mcqa_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
