# Empty dependencies file for mcqa_index.
# This may be replaced when dependencies are built.
