# Empty dependencies file for mcqa_embed.
# This may be replaced when dependencies are built.
