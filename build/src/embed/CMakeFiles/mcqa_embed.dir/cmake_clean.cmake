file(REMOVE_RECURSE
  "CMakeFiles/mcqa_embed.dir/embedder.cpp.o"
  "CMakeFiles/mcqa_embed.dir/embedder.cpp.o.d"
  "CMakeFiles/mcqa_embed.dir/embedding_cache.cpp.o"
  "CMakeFiles/mcqa_embed.dir/embedding_cache.cpp.o.d"
  "CMakeFiles/mcqa_embed.dir/embedding_store.cpp.o"
  "CMakeFiles/mcqa_embed.dir/embedding_store.cpp.o.d"
  "CMakeFiles/mcqa_embed.dir/hashed_embedder.cpp.o"
  "CMakeFiles/mcqa_embed.dir/hashed_embedder.cpp.o.d"
  "libmcqa_embed.a"
  "libmcqa_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcqa_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
