
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embed/embedder.cpp" "src/embed/CMakeFiles/mcqa_embed.dir/embedder.cpp.o" "gcc" "src/embed/CMakeFiles/mcqa_embed.dir/embedder.cpp.o.d"
  "/root/repo/src/embed/embedding_cache.cpp" "src/embed/CMakeFiles/mcqa_embed.dir/embedding_cache.cpp.o" "gcc" "src/embed/CMakeFiles/mcqa_embed.dir/embedding_cache.cpp.o.d"
  "/root/repo/src/embed/embedding_store.cpp" "src/embed/CMakeFiles/mcqa_embed.dir/embedding_store.cpp.o" "gcc" "src/embed/CMakeFiles/mcqa_embed.dir/embedding_store.cpp.o.d"
  "/root/repo/src/embed/hashed_embedder.cpp" "src/embed/CMakeFiles/mcqa_embed.dir/hashed_embedder.cpp.o" "gcc" "src/embed/CMakeFiles/mcqa_embed.dir/hashed_embedder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mcqa_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/mcqa_text.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/mcqa_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
