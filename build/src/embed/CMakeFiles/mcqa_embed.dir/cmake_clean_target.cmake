file(REMOVE_RECURSE
  "libmcqa_embed.a"
)
