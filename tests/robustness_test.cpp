// Failure injection and fuzz-style robustness tests: the pipeline's
// ingestion surfaces must never crash on malformed input — corrupt SPDF
// streams, truncated artifacts, garbage model output — and fp16
// conversion must be exact over its entire 16-bit domain.

#include <gtest/gtest.h>

#include <cmath>

#include "corpus/paper_generator.hpp"
#include "corpus/spdf.hpp"
#include "eval/judge.hpp"
#include "json/json.hpp"
#include "parse/adaptive.hpp"
#include "util/fp16.hpp"
#include "util/rng.hpp"

namespace mcqa {
namespace {

// --- fp16 exhaustive ----------------------------------------------------------

TEST(Fp16Exhaustive, EveryHalfValueRoundTripsThroughFloat) {
  // half -> float -> half must be the identity for every one of the
  // 65,536 bit patterns (float superset property), modulo NaN payloads
  // collapsing to a canonical quiet NaN.
  for (std::uint32_t bits = 0; bits <= 0xffff; ++bits) {
    const auto h = static_cast<util::fp16_t>(bits);
    const float f = util::fp16_to_float(h);
    const util::fp16_t back = util::float_to_fp16(f);
    if (std::isnan(f)) {
      const float back_f = util::fp16_to_float(back);
      EXPECT_TRUE(std::isnan(back_f)) << "bits=" << bits;
    } else {
      EXPECT_EQ(back, h) << "bits=" << bits << " f=" << f;
    }
  }
}

TEST(Fp16Exhaustive, MonotonicOnPositives) {
  // Conversion to float preserves ordering of positive halves.
  float prev = -1.0f;
  for (std::uint32_t bits = 0; bits < 0x7c00; ++bits) {  // finite positives
    const float f = util::fp16_to_float(static_cast<util::fp16_t>(bits));
    EXPECT_GT(f, prev) << "bits=" << bits;
    prev = f;
  }
}

// --- SPDF fuzzing ----------------------------------------------------------------

corpus::PaperSpec fuzz_spec() {
  static const corpus::KnowledgeBase kb = corpus::KnowledgeBase::generate(
      corpus::KbConfig{.facts_per_topic = 8, .seed = 77, .math_fraction = 0.4});
  const corpus::PaperGenerator gen(kb, corpus::PaperGenConfig{});
  return gen.generate(0, corpus::DocKind::kFullPaper, util::Rng(88));
}

TEST(ParserFuzz, RandomTruncationNeverCrashes) {
  const std::string bytes =
      write_spdf(fuzz_spec(), corpus::SpdfNoise::moderate(), util::Rng(1));
  const parse::AdaptiveParser parser;
  util::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const std::size_t cut =
        rng.bounded(static_cast<std::uint32_t>(bytes.size() + 1));
    const parse::ParseOutcome outcome =
        parser.parse(std::string_view(bytes).substr(0, cut));
    // Must terminate with either a document or an error — both fine.
    if (!outcome.ok) {
      EXPECT_FALSE(outcome.error.empty());
    }
  }
}

TEST(ParserFuzz, RandomByteFlipsNeverCrash) {
  const std::string original =
      write_spdf(fuzz_spec(), corpus::SpdfNoise::moderate(), util::Rng(3));
  const parse::AdaptiveParser parser;
  util::Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    std::string bytes = original;
    const int flips = 1 + static_cast<int>(rng.bounded(16));
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos =
          rng.bounded(static_cast<std::uint32_t>(bytes.size()));
      bytes[pos] = static_cast<char>(rng.bounded(256));
    }
    const parse::ParseOutcome outcome = parser.parse(bytes);
    if (outcome.ok) {
      // Whatever survives must still carry a sane quality score.
      EXPECT_GE(outcome.document.quality, 0.0);
      EXPECT_LE(outcome.document.quality, 1.0);
    }
  }
}

TEST(ParserFuzz, RandomGarbageInput) {
  const parse::AdaptiveParser parser;
  util::Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    std::string garbage(rng.bounded(2048), '\0');
    for (auto& c : garbage) c = static_cast<char>(rng.bounded(256));
    const parse::ParseOutcome outcome = parser.parse(garbage);
    // Any byte soup that doesn't start with a known magic must either be
    // handled by the plain-text fallback or rejected cleanly.
    if (!outcome.ok) {
      EXPECT_FALSE(outcome.error.empty());
    }
  }
}

// --- JSON parser fuzzing ------------------------------------------------------------

TEST(JsonFuzz, MutatedDocumentsParseOrThrow) {
  const std::string base =
      R"({"question":"What?","options":["a","b"],"nested":{"x":[1,2.5,null,true]}})";
  util::Rng rng(6);
  for (int trial = 0; trial < 500; ++trial) {
    std::string text = base;
    const int edits = 1 + static_cast<int>(rng.bounded(6));
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos =
          rng.bounded(static_cast<std::uint32_t>(text.size()));
      switch (rng.bounded(3)) {
        case 0: text[pos] = static_cast<char>(rng.bounded(128)); break;
        case 1: text.erase(pos, 1); break;
        default:
          text.insert(pos, 1, static_cast<char>(rng.bounded(128)));
      }
    }
    try {
      const json::Value v = json::Value::parse(text);
      // Parsed: dumping must not throw, and must re-parse.
      const json::Value again = json::Value::parse(v.dump());
      EXPECT_TRUE(v == again);
    } catch (const json::ParseError&) {
      // rejected cleanly — fine
    }
  }
}

// --- judge fuzzing --------------------------------------------------------------------

TEST(JudgeFuzz, ArbitraryAnswerTextNeverCrashes) {
  const eval::Judge judge;
  const std::vector<std::string> options{"cisplatin", "8 days", "the G2/M "
                                         "checkpoint"};
  util::Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    std::string text(rng.bounded(300), ' ');
    for (auto& c : text) {
      c = static_cast<char>(32 + rng.bounded(95));  // printable ASCII
    }
    const int got = judge.extract_option(text, options);
    EXPECT_GE(got, -1);
    EXPECT_LT(got, static_cast<int>(options.size()));
  }
}

TEST(JudgeFuzz, NewlinesAndBinaryInAnswers) {
  const eval::Judge judge;
  const std::vector<std::string> options{"alpha", "beta"};
  EXPECT_NO_THROW(judge.extract_option(std::string("\n\n\x01\x02\xff"),
                                       options));
  EXPECT_NO_THROW(judge.extract_option(std::string(10000, 'a'), options));
}

// --- pathological documents -----------------------------------------------------------

TEST(Pathological, HugeSingleLineSpdf) {
  std::string bytes = "%SPDF-1.2\n%%Title: t\n%%DocId: d\n%%Kind: paper\n"
                      "%%BeginPage 1\n";
  bytes += std::string(200000, 'x');
  bytes += "\n%%EndPage\n%%EOF\n";
  const parse::AdaptiveParser parser;
  const parse::ParseOutcome outcome = parser.parse(bytes);
  EXPECT_TRUE(outcome.ok);
}

TEST(Pathological, ThousandsOfEmptyPages) {
  std::string bytes = "%SPDF-1.2\n%%Title: t\n%%DocId: d\n%%Kind: paper\n";
  for (int p = 1; p <= 2000; ++p) {
    bytes += "%%BeginPage " + std::to_string(p) + "\n%%EndPage\n";
  }
  bytes += "%%EOF\n";
  const parse::AdaptiveParser parser;
  const parse::ParseOutcome outcome = parser.parse(bytes);
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.document.pages, 2000u);
  EXPECT_TRUE(outcome.document.body_text().empty());
}

TEST(Pathological, DeeplyNestedJsonRejectedOrParsed) {
  // 100k-deep nesting: must either parse or throw, never overflow
  // unchecked.  (Recursion depth ~100k is too deep for default stacks,
  // so the parser is expected to throw or the test environment's stack
  // to hold — keep depth moderate to assert graceful handling.)
  std::string deep;
  for (int i = 0; i < 2000; ++i) deep += "[";
  deep += "0";
  for (int i = 0; i < 2000; ++i) deep += "]";
  EXPECT_NO_THROW({
    const json::Value v = json::Value::parse(deep);
    (void)v;
  });
}

}  // namespace
}  // namespace mcqa
