// Property tests for the tiled multi-query scan layer and the runtime
// kernel ISA dispatch (DESIGN.md §18): single-query vs tiled vs SIMD
// bit-identity for all four scoring kernels (random dims off the
// kLanes/kTileQ multiples, ragged final tiles), TopK push-order
// invariance (the property that makes cross-tile row regrouping safe),
// tiled search_block == per-query search over flat/SQ8/IVF-PQ and an
// mmap-opened blob, the grain-chunked search_batch at 1/2/8 threads,
// and the serve-tier batch paths (ShardedStore, StoreSnapshot).
//
// Suites are named TiledScan* so the tsan preset's filter picks up the
// concurrency-facing ones (CMakePresets.json).

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <unistd.h>

#include "embed/hashed_embedder.hpp"
#include "index/kernels.hpp"
#include "index/quantized.hpp"
#include "index/vector_index.hpp"
#include "index/vector_store.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/live_store.hpp"
#include "serve/sharded_store.hpp"
#include "util/fp16.hpp"
#include "util/rng.hpp"

namespace mcqa::index {
namespace {

std::vector<float> random_row(std::size_t n, util::Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

std::vector<embed::Vector> random_unit_vectors(std::size_t n, std::size_t dim,
                                               std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<embed::Vector> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    embed::Vector v(dim);
    for (auto& x : v) x = static_cast<float>(rng.normal());
    embed::normalize(v);
    out.push_back(std::move(v));
  }
  return out;
}

void expect_bit_equal(float got, float want, const std::string& what) {
  EXPECT_EQ(std::bit_cast<std::uint32_t>(got),
            std::bit_cast<std::uint32_t>(want))
      << what << " got=" << got << " want=" << want;
}

void expect_same_results(const std::vector<SearchResult>& a,
                         const std::vector<SearchResult>& b,
                         const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].row, b[i].row) << what << " rank " << i;
    EXPECT_EQ(std::bit_cast<std::uint32_t>(a[i].score),
              std::bit_cast<std::uint32_t>(b[i].score))
        << what << " rank " << i;
  }
}

/// Every usable table: scalar always, AVX2 when compiled in and the
/// CPU has it.
std::vector<kernels::KernelIsa> usable_isas() {
  std::vector<kernels::KernelIsa> out{kernels::KernelIsa::kScalar};
  if (kernels::ops_for(kernels::KernelIsa::kAvx2) != nullptr) {
    out.push_back(kernels::KernelIsa::kAvx2);
  }
  return out;
}

// Dims off the kLanes multiples on purpose: ragged lane tails must
// rotate identically in the single-query and tiled loops.
const std::size_t kDims[] = {1, 3, 7, 8, 9, 16, 17, 31, 64, 96, 255, 256};

// --- kernel-level bit identity ----------------------------------------------

TEST(TiledScanKernels, DotTileMatchesSingleQueryEveryIsaAndRaggedWidth) {
  util::Rng rng(501);
  for (const kernels::KernelIsa isa : usable_isas()) {
    const kernels::KernelOps& ops = *kernels::ops_for(isa);
    for (const std::size_t n : kDims) {
      const auto row = random_row(n, rng);
      std::vector<std::vector<float>> queries;
      const float* qs[kernels::kTileQ];
      for (std::size_t q = 0; q < kernels::kTileQ; ++q) {
        queries.push_back(random_row(n, rng));
      }
      for (std::size_t qn = 1; qn <= kernels::kTileQ; ++qn) {
        for (std::size_t q = 0; q < qn; ++q) qs[q] = queries[q].data();
        float out[kernels::kTileQ];
        ops.dot_tile(row.data(), qs, qn, n, out);
        for (std::size_t q = 0; q < qn; ++q) {
          expect_bit_equal(out[q], ops.dot(row.data(), qs[q], n),
                           "dot_tile isa=" +
                               std::string(kernels::isa_name(isa)) +
                               " n=" + std::to_string(n) +
                               " qn=" + std::to_string(qn));
        }
      }
    }
  }
}

TEST(TiledScanKernels, DotFp16TileMatchesSingleQuery) {
  util::Rng rng(502);
  for (const kernels::KernelIsa isa : usable_isas()) {
    const kernels::KernelOps& ops = *kernels::ops_for(isa);
    for (const std::size_t n : kDims) {
      const auto raw = random_row(n, rng);
      std::vector<util::fp16_t> row(n);
      for (std::size_t i = 0; i < n; ++i) row[i] = util::float_to_fp16(raw[i]);
      std::vector<std::vector<float>> queries;
      const float* qs[kernels::kTileQ];
      for (std::size_t q = 0; q < kernels::kTileQ; ++q) {
        queries.push_back(random_row(n, rng));
      }
      for (std::size_t qn = 1; qn <= kernels::kTileQ; ++qn) {
        for (std::size_t q = 0; q < qn; ++q) qs[q] = queries[q].data();
        float out[kernels::kTileQ];
        ops.dot_fp16_tile(row.data(), qs, qn, n, out);
        for (std::size_t q = 0; q < qn; ++q) {
          expect_bit_equal(out[q], ops.dot_fp16(row.data(), qs[q], n),
                           "dot_fp16_tile isa=" +
                               std::string(kernels::isa_name(isa)) +
                               " n=" + std::to_string(n) +
                               " qn=" + std::to_string(qn));
        }
      }
    }
  }
}

TEST(TiledScanKernels, DotU8TileMatchesSingleQuery) {
  util::Rng rng(503);
  for (const kernels::KernelIsa isa : usable_isas()) {
    const kernels::KernelOps& ops = *kernels::ops_for(isa);
    for (const std::size_t n : kDims) {
      std::vector<std::uint8_t> codes(n);
      for (auto& c : codes) c = static_cast<std::uint8_t>(rng.bounded(256));
      std::vector<std::vector<float>> weights;
      const float* ws[kernels::kTileQ];
      for (std::size_t q = 0; q < kernels::kTileQ; ++q) {
        weights.push_back(random_row(n, rng));
      }
      for (std::size_t qn = 1; qn <= kernels::kTileQ; ++qn) {
        for (std::size_t q = 0; q < qn; ++q) ws[q] = weights[q].data();
        float out[kernels::kTileQ];
        ops.dot_u8_tile(codes.data(), ws, qn, n, out);
        for (std::size_t q = 0; q < qn; ++q) {
          expect_bit_equal(out[q], ops.dot_u8(codes.data(), ws[q], n),
                           "dot_u8_tile isa=" +
                               std::string(kernels::isa_name(isa)) +
                               " n=" + std::to_string(n) +
                               " qn=" + std::to_string(qn));
        }
      }
    }
  }
}

TEST(TiledScanKernels, PqLookupTileMatchesSingleQuery) {
  util::Rng rng(504);
  // Subquantizer counts off the lane multiples, small/odd ksub.
  const std::size_t kMs[] = {1, 3, 7, 8, 9, 16, 24};
  for (const kernels::KernelIsa isa : usable_isas()) {
    const kernels::KernelOps& ops = *kernels::ops_for(isa);
    for (const std::size_t m : kMs) {
      for (const std::size_t ksub : {std::size_t{5}, std::size_t{256}}) {
        std::vector<std::uint8_t> codes(m);
        for (auto& c : codes) {
          c = static_cast<std::uint8_t>(
              rng.bounded(static_cast<std::uint32_t>(ksub)));
        }
        std::vector<std::vector<float>> tables;
        const float* tabs[kernels::kTileQ];
        for (std::size_t q = 0; q < kernels::kTileQ; ++q) {
          tables.push_back(random_row(m * ksub, rng));
        }
        for (std::size_t qn = 1; qn <= kernels::kTileQ; ++qn) {
          for (std::size_t q = 0; q < qn; ++q) tabs[q] = tables[q].data();
          float out[kernels::kTileQ];
          ops.pq_lookup_tile(codes.data(), tabs, qn, m, ksub, out);
          for (std::size_t q = 0; q < qn; ++q) {
            expect_bit_equal(out[q],
                             ops.pq_lookup(codes.data(), tabs[q], m, ksub),
                             "pq_lookup_tile isa=" +
                                 std::string(kernels::isa_name(isa)) +
                                 " m=" + std::to_string(m) +
                                 " qn=" + std::to_string(qn));
          }
        }
      }
    }
  }
}

// --- ISA dispatch ------------------------------------------------------------

TEST(TiledScanIsa, ScalarAndAvx2TablesBitIdentical) {
  const kernels::KernelOps* avx2 = kernels::ops_for(kernels::KernelIsa::kAvx2);
  if (avx2 == nullptr) {
    GTEST_SKIP() << "AVX2 table unavailable on this host";
  }
  const kernels::KernelOps& scalar =
      *kernels::ops_for(kernels::KernelIsa::kScalar);
  util::Rng rng(505);
  for (const std::size_t n : kDims) {
    const auto a = random_row(n, rng);
    const auto b = random_row(n, rng);
    std::vector<util::fp16_t> half(n);
    std::vector<std::uint8_t> codes(n);
    for (std::size_t i = 0; i < n; ++i) {
      half[i] = util::float_to_fp16(a[i]);
      codes[i] = static_cast<std::uint8_t>(rng.bounded(256));
    }
    const std::string what = "isa-pair n=" + std::to_string(n);
    expect_bit_equal(avx2->dot(a.data(), b.data(), n),
                     scalar.dot(a.data(), b.data(), n), what);
    expect_bit_equal(avx2->l2_sq(a.data(), b.data(), n),
                     scalar.l2_sq(a.data(), b.data(), n), what);
    expect_bit_equal(avx2->dot_fp16(half.data(), b.data(), n),
                     scalar.dot_fp16(half.data(), b.data(), n), what);
    expect_bit_equal(avx2->dot_u8(codes.data(), b.data(), n),
                     scalar.dot_u8(codes.data(), b.data(), n), what);
  }
}

TEST(TiledScanIsa, ResolutionRuleAndNames) {
  using kernels::KernelIsa;
  EXPECT_EQ(kernels::resolve_isa(nullptr, true), KernelIsa::kAvx2);
  EXPECT_EQ(kernels::resolve_isa(nullptr, false), KernelIsa::kScalar);
  EXPECT_EQ(kernels::resolve_isa("scalar", true), KernelIsa::kScalar);
  EXPECT_EQ(kernels::resolve_isa("avx2", true), KernelIsa::kAvx2);
  // Requested-but-unavailable and unknown names fail soft.
  EXPECT_EQ(kernels::resolve_isa("avx2", false), KernelIsa::kScalar);
  EXPECT_EQ(kernels::resolve_isa("avx512", true), KernelIsa::kAvx2);
  EXPECT_EQ(kernels::isa_name(KernelIsa::kScalar), "scalar");
  EXPECT_EQ(kernels::isa_name(KernelIsa::kAvx2), "avx2");
  // The dispatched table is one of the usable ones.
  EXPECT_NE(kernels::ops_for(kernels::dispatched_isa()), nullptr);
}

TEST(TiledScanIsa, SetDispatchForTestingSwapsAndRestores) {
  const kernels::KernelIsa before = kernels::dispatched_isa();
  ASSERT_TRUE(kernels::set_dispatch_for_testing(kernels::KernelIsa::kScalar));
  EXPECT_EQ(kernels::dispatched_isa(), kernels::KernelIsa::kScalar);
  if (kernels::ops_for(kernels::KernelIsa::kAvx2) != nullptr) {
    ASSERT_TRUE(kernels::set_dispatch_for_testing(kernels::KernelIsa::kAvx2));
    EXPECT_EQ(kernels::dispatched_isa(), kernels::KernelIsa::kAvx2);
  } else {
    EXPECT_FALSE(kernels::set_dispatch_for_testing(kernels::KernelIsa::kAvx2));
    EXPECT_EQ(kernels::dispatched_isa(), kernels::KernelIsa::kScalar);
  }
  ASSERT_TRUE(kernels::set_dispatch_for_testing(before));
}

// --- TopK push-order invariance ---------------------------------------------

TEST(TiledScanTopK, OutcomeInvariantUnderPushOrder) {
  // The tiled paths regroup row visits across a query tile (rerank and
  // IVF-PQ cell scans push in row order instead of candidate-rank
  // order); the kept set must be a pure function of the pushed
  // multiset.
  util::Rng rng(506);
  for (const std::size_t k : {std::size_t{1}, std::size_t{8},
                              std::size_t{33}}) {
    std::vector<SearchResult> cands;
    for (std::size_t row = 0; row < 120; ++row) {
      // Coarse scores force ties so the row tie-break participates.
      cands.push_back(
          {row, static_cast<float>(rng.bounded(12)) / 12.0f});
    }
    TopK forward(k);
    for (const auto& c : cands) forward.push(c.row, c.score);
    const auto want = forward.take_sorted();
    for (int shuffle = 0; shuffle < 4; ++shuffle) {
      rng.shuffle(cands);
      TopK perm(k);
      for (const auto& c : cands) perm.push(c.row, c.score);
      expect_same_results(perm.take_sorted(), want,
                          "k=" + std::to_string(k) +
                              " shuffle=" + std::to_string(shuffle));
    }
  }
}

// --- index-level identity ----------------------------------------------------

struct TiledIndexCase {
  IndexKind kind;
  bool covering;  ///< quantized candidate set spans the whole store
};

std::unique_ptr<VectorIndex> make_case_index(const TiledIndexCase& c,
                                             std::size_t dim,
                                             std::size_t rows) {
  switch (c.kind) {
    case IndexKind::kFlat:
      return std::make_unique<FlatIndex>(dim);
    case IndexKind::kSq8: {
      Sq8Config cfg;
      cfg.min_candidates = c.covering ? rows : 24;
      cfg.oversample = 2;
      return std::make_unique<Sq8Index>(dim, cfg);
    }
    case IndexKind::kIvfPq: {
      // Non-covering case probes a strict subset of cells, so the
      // per-cell sub-tiling must reproduce each query's own candidate
      // set exactly.
      IvfPqConfig cfg;
      cfg.nlist = 12;
      cfg.nprobe = c.covering ? 12 : 3;
      cfg.m = 8;
      cfg.min_candidates = c.covering ? rows : 16;
      cfg.oversample = 2;
      return std::make_unique<IvfPqIndex>(dim, cfg);
    }
    default:
      return nullptr;
  }
}

class TiledScanIndex
    : public ::testing::TestWithParam<TiledIndexCase> {};

TEST_P(TiledScanIndex, SearchTiledMatchesPerQuerySearch) {
  constexpr std::size_t kDim = 36;
  constexpr std::size_t kRows = 500;
  const auto data = random_unit_vectors(kRows, kDim, 601);
  // 21 queries: two full tiles + a ragged 5-query tail.
  const auto queries = random_unit_vectors(21, kDim, 602);
  auto idx = make_case_index(GetParam(), kDim, kRows);
  idx->add_batch(data);
  idx->build();

  for (const std::size_t k : {std::size_t{1}, std::size_t{9}}) {
    const auto got = idx->search_tiled(queries, k);
    ASSERT_EQ(got.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      expect_same_results(got[i], idx->search(queries[i], k),
                          "q=" + std::to_string(i) +
                              " k=" + std::to_string(k));
    }
  }
}

TEST_P(TiledScanIndex, SearchBatchMatchesSequentialAtAnyThreadCount) {
  constexpr std::size_t kDim = 36;
  constexpr std::size_t kRows = 400;
  constexpr std::size_t kK = 7;
  const auto data = random_unit_vectors(kRows, kDim, 603);
  const auto queries = random_unit_vectors(43, kDim, 604);
  auto idx = make_case_index(GetParam(), kDim, kRows);
  idx->add_batch(data);
  idx->build();

  std::vector<std::vector<SearchResult>> want;
  want.reserve(queries.size());
  for (const auto& q : queries) want.push_back(idx->search(q, kK));

  for (const std::size_t threads : {1u, 2u, 8u}) {
    parallel::ThreadPool pool(threads);
    const auto got = idx->search_batch(queries, kK, pool);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      expect_same_results(got[i], want[i],
                          "threads=" + std::to_string(threads) +
                              " q=" + std::to_string(i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, TiledScanIndex,
    ::testing::Values(TiledIndexCase{IndexKind::kFlat, true},
                      TiledIndexCase{IndexKind::kSq8, true},
                      TiledIndexCase{IndexKind::kSq8, false},
                      TiledIndexCase{IndexKind::kIvfPq, true},
                      TiledIndexCase{IndexKind::kIvfPq, false}),
    [](const auto& info) {
      return std::string(index_kind_name(info.param.kind)) +
             (info.param.covering ? "Covering" : "Subset");
    });

TEST(TiledScanIndex, EmptyStoreAndEmptyBatch) {
  FlatIndex flat(8);
  EXPECT_TRUE(flat.search_tiled({}, 3).empty());
  const auto queries = random_unit_vectors(5, 8, 605);
  for (const auto& out : flat.search_tiled(queries, 3)) {
    EXPECT_TRUE(out.empty());
  }
  Sq8Index sq8(8);
  sq8.build();
  for (const auto& out : sq8.search_tiled(queries, 3)) {
    EXPECT_TRUE(out.empty());
  }
}

TEST(TiledScanIndex, BaseClassFallbackCoversGraphIndexes) {
  // IVF/HNSW keep the per-query path under the chunked search_batch.
  constexpr std::size_t kDim = 24;
  const auto data = random_unit_vectors(300, kDim, 606);
  const auto queries = random_unit_vectors(13, kDim, 607);
  HnswIndex idx(kDim);
  idx.add_batch(data);
  const auto got = idx.search_tiled(queries, 5);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expect_same_results(got[i], idx.search(queries[i], 5),
                        "hnsw q=" + std::to_string(i));
  }
}

// --- mmap-backed stores ------------------------------------------------------

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    static int counter = 0;
    path = std::filesystem::temp_directory_path() /
           ("mcqa-tiled-scan-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

TEST(TiledScanMmap, TiledBatchOverMappedIndexesMatchesSequential) {
  constexpr std::size_t kDim = 32;
  constexpr std::size_t kK = 8;
  const auto data = random_unit_vectors(350, kDim, 608);
  const auto queries = random_unit_vectors(19, kDim, 609);
  const TempDir dir;

  for (const IndexKind kind :
       {IndexKind::kFlat, IndexKind::kSq8, IndexKind::kIvfPq}) {
    std::unique_ptr<VectorIndex> built;
    switch (kind) {
      case IndexKind::kFlat:
        built = std::make_unique<FlatIndex>(kDim);
        break;
      case IndexKind::kSq8:
        built = std::make_unique<Sq8Index>(kDim);
        break;
      default:
        built = std::make_unique<IvfPqIndex>(kDim);
        break;
    }
    built->add_batch(data);
    built->build();
    const auto path =
        dir.path / (std::string(index_kind_name(kind)) + ".idx");
    {
      std::ofstream out(path, std::ios::binary);
      const std::string blob = built->save();
      out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    }
    const MappedIndex mapped = open_index_mmap(path.string());
    ASSERT_TRUE(mapped.index->mmap_backed()) << index_kind_name(kind);

    std::vector<std::vector<SearchResult>> want;
    for (const auto& q : queries) want.push_back(mapped.index->search(q, kK));
    const auto tiled = mapped.index->search_tiled(queries, kK);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      expect_same_results(tiled[i], want[i],
                          std::string(index_kind_name(kind)) +
                              " tiled q=" + std::to_string(i));
    }
    for (const std::size_t threads : {2u, 8u}) {
      parallel::ThreadPool pool(threads);
      const auto got = mapped.index->search_batch(queries, kK, pool);
      for (std::size_t i = 0; i < queries.size(); ++i) {
        expect_same_results(got[i], want[i],
                            std::string(index_kind_name(kind)) +
                                " threads=" + std::to_string(threads));
      }
    }
  }
}

}  // namespace
}  // namespace mcqa::index

// --- serve-tier batch paths --------------------------------------------------

namespace mcqa::serve {
namespace {

std::string doc_text(int i) {
  return "radiation oncology protocol note " + std::to_string(i * 13 % 97) +
         " marker " + std::to_string(i);
}

void expect_same_hits(const std::vector<index::Hit>& got,
                      const std::vector<index::Hit>& want,
                      const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << what << " rank " << i;
    EXPECT_EQ(got[i].text, want[i].text) << what << " rank " << i;
    EXPECT_EQ(std::bit_cast<std::uint32_t>(got[i].score),
              std::bit_cast<std::uint32_t>(want[i].score))
        << what << " rank " << i;
  }
}

TEST(TiledScanServe, ShardedStoreBatchMatchesPerQuery) {
  const embed::HashedNGramEmbedder embedder;
  index::VectorStore base(embedder, index::IndexKind::kFlat);
  for (int i = 0; i < 90; ++i) {
    base.add("doc-" + std::to_string(i), doc_text(i));
  }
  base.build();

  std::vector<std::string> queries;
  for (int i = 0; i < 11; ++i) {
    queries.push_back("protocol marker " + std::to_string(i * 7));
  }
  for (const index::IndexKind kind :
       {index::IndexKind::kFlat, index::IndexKind::kSq8}) {
    const ShardedStore store(base, 3, kind);
    const auto got = store.query_batch(queries, 4);
    ASSERT_EQ(got.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      expect_same_hits(got[i], store.query(queries[i], 4),
                       std::string(index::index_kind_name(kind)) +
                           " q=" + std::to_string(i));
    }
  }
}

TEST(TiledScanServe, SnapshotBatchMatchesPerQueryAcrossEpochs) {
  const embed::HashedNGramEmbedder embedder;
  LiveStoreConfig cfg;
  cfg.compact_threshold = 64;  // keep delta segments alive
  LiveStore live(embedder, cfg);

  std::vector<std::string> queries;
  for (int i = 0; i < 9; ++i) {
    queries.push_back("note marker " + std::to_string(i * 5));
  }
  int next = 0;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 25; ++i, ++next) {
      live.append("row-" + std::to_string(next), doc_text(next));
    }
    if (round == 2) live.tombstone("row-3");
    live.publish();
    const auto snap = live.snapshot();
    const auto got = snap->query_batch(queries, 5);
    ASSERT_EQ(got.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      expect_same_hits(got[i], snap->query(queries[i], 5),
                       "epoch=" + std::to_string(snap->epoch()) +
                           " q=" + std::to_string(i));
    }
  }
}

}  // namespace
}  // namespace mcqa::serve
