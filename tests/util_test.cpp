// Unit tests for src/util: RNG, fp16, hashing, strings, histogram.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "util/fp16.hpp"
#include "util/hash.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace mcqa::util {
namespace {

// --- Rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42, 7);
  Rng b(42, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(42);
  Rng b(43);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 5);
}

TEST(Rng, DifferentStreamsDiffer) {
  Rng a(42, 1);
  Rng b(42, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 5);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(1);
  for (std::uint32_t bound : {1u, 2u, 3u, 7u, 100u, 1000000u}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.bounded(bound), bound);
    }
  }
}

TEST(Rng, BoundedZeroAndOne) {
  Rng rng(1);
  EXPECT_EQ(rng.bounded(0), 0u);
  EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerate) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
  EXPECT_EQ(rng.uniform_int(9, 2), 9);  // hi < lo clamps to lo
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(Rng, ZipfSkewsLow) {
  Rng rng(13);
  std::size_t low = 0;
  const std::size_t n = 10000;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t k = rng.zipf(100, 1.2);
    EXPECT_LT(k, 100u);
    low += (k < 10) ? 1 : 0;
  }
  // Rank 0-9 should dominate under a Zipf law.
  EXPECT_GT(low, n / 2);
}

TEST(Rng, ZipfSingleton) {
  Rng rng(13);
  EXPECT_EQ(rng.zipf(1), 0u);
  EXPECT_EQ(rng.zipf(0), 0u);
}

TEST(Rng, ForkIndependence) {
  const Rng parent(99);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  Rng a2 = parent.fork(1);
  EXPECT_EQ(a(), a2());  // same salt -> same stream
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 5);
}

TEST(Rng, ForkByStringMatchesSameString) {
  const Rng parent(99);
  Rng a = parent.fork("doc_1");
  Rng b = parent.fork("doc_1");
  Rng c = parent.fork("doc_2");
  EXPECT_EQ(a(), b());
  Rng a3 = parent.fork("doc_1");
  EXPECT_NE(a3(), c());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(7);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(21);
  const auto sample = rng.sample_indices(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const auto i : sample) EXPECT_LT(i, 50u);
}

TEST(Rng, SampleIndicesClampsToN) {
  Rng rng(21);
  EXPECT_EQ(rng.sample_indices(5, 10).size(), 5u);
  EXPECT_TRUE(rng.sample_indices(5, 0).empty());
}

TEST(Rng, WeightedPickRespectsWeights) {
  Rng rng(33);
  const std::vector<double> w{0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.weighted_pick(w), 1u);
}

TEST(Rng, WeightedPickAllZeroReturnsSize) {
  Rng rng(33);
  const std::vector<double> w{0.0, 0.0};
  EXPECT_EQ(rng.weighted_pick(w), 2u);
  EXPECT_EQ(rng.weighted_pick({}), 0u);
}

TEST(Rng, WeightedPickProportions) {
  Rng rng(37);
  const std::vector<double> w{1.0, 3.0};
  int ones = 0;
  for (int i = 0; i < 10000; ++i) ones += rng.weighted_pick(w) == 1 ? 1 : 0;
  EXPECT_NEAR(ones / 10000.0, 0.75, 0.03);
}

// --- fp16 ---------------------------------------------------------------------

TEST(Fp16, ExactValuesRoundTrip) {
  for (const float f : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -2.5f, 1024.0f}) {
    EXPECT_EQ(fp16_to_float(float_to_fp16(f)), f) << f;
  }
}

TEST(Fp16, SignedZero) {
  EXPECT_EQ(float_to_fp16(0.0f), 0x0000);
  EXPECT_EQ(float_to_fp16(-0.0f), 0x8000);
}

TEST(Fp16, InfinityAndNan) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(fp16_to_float(float_to_fp16(inf)), inf);
  EXPECT_EQ(fp16_to_float(float_to_fp16(-inf)), -inf);
  EXPECT_TRUE(std::isnan(fp16_to_float(
      float_to_fp16(std::numeric_limits<float>::quiet_NaN()))));
}

TEST(Fp16, OverflowSaturatesToInf) {
  EXPECT_TRUE(std::isinf(fp16_to_float(float_to_fp16(1e6f))));
}

TEST(Fp16, UnderflowToZero) {
  EXPECT_EQ(fp16_to_float(float_to_fp16(1e-9f)), 0.0f);
}

TEST(Fp16, SubnormalHalfValues) {
  // Smallest positive half subnormal: 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_NEAR(fp16_to_float(float_to_fp16(tiny)), tiny, tiny * 0.01);
}

class Fp16ErrorBound : public ::testing::TestWithParam<float> {};

TEST_P(Fp16ErrorBound, RelativeErrorWithinHalfUlp) {
  const float f = GetParam();
  const float back = fp16_to_float(float_to_fp16(f));
  // Half precision has 11 significand bits: rel error <= 2^-11.
  EXPECT_LE(std::fabs(back - f), std::fabs(f) * 0x1.0p-11 + 1e-12f);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Fp16ErrorBound,
                         ::testing::Values(0.1f, 0.333f, 3.14159f, 17.29f,
                                           -0.777f, 123.456f, 0.001f,
                                           -4096.5f, 65000.0f));

TEST(Fp16, VectorQuantizeDequantize) {
  const std::vector<float> v{0.1f, -0.5f, 2.0f, 0.0f};
  const auto q = quantize_fp16(v);
  const auto d = dequantize_fp16(q);
  ASSERT_EQ(d.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(d[i], v[i], std::fabs(v[i]) * 0.001 + 1e-6);
  }
}

// --- hash ---------------------------------------------------------------------

TEST(Hash, Fnv1aStableKnownValue) {
  // FNV-1a of empty string is the offset basis.
  EXPECT_EQ(fnv1a64(""), kFnvOffset64);
  // Same input same hash, different input different hash.
  EXPECT_EQ(fnv1a64("abc"), fnv1a64("abc"));
  EXPECT_NE(fnv1a64("abc"), fnv1a64("abd"));
}

TEST(Hash, IntegerOverloadDiffersFromString) {
  EXPECT_NE(fnv1a64(std::uint64_t{1}), fnv1a64(std::uint64_t{2}));
}

TEST(Hash, CombineNotCommutative) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(Hash, HexDigestWidthAndChars) {
  const std::string d = hex_digest(0xdeadbeefULL, 12);
  EXPECT_EQ(d.size(), 12u);
  EXPECT_EQ(d.substr(4), "deadbeef");
  EXPECT_EQ(hex_digest(0xfULL, 1), "f");
  EXPECT_EQ(hex_digest(0xabcULL, 16).size(), 16u);
}

TEST(Hash, IncrementalMatchesOneShotAtEverySplitPoint) {
  // The property the streaming embedder rests on: FNV-1a has no
  // finalization, so hashing any prefix/suffix split piecewise equals
  // hashing the whole string at once.
  const std::string s = "the quick brown fox jumps over 13 lazy dogs.";
  const std::uint64_t want = fnv1a64(s);
  for (std::size_t cut = 0; cut <= s.size(); ++cut) {
    Fnv1a h;
    h.update(std::string_view(s).substr(0, cut));
    h.update(std::string_view(s).substr(cut));
    EXPECT_EQ(h.digest(), want) << "split at " << cut;
  }
}

TEST(Hash, IncrementalByteFeedingMatchesOneShot) {
  const std::string s = "piecewise";
  Fnv1a h;
  for (const char c : s) h.update(c);
  EXPECT_EQ(h.digest(), fnv1a64(s));
  // Empty updates are identity.
  Fnv1a e;
  e.update(std::string_view{});
  EXPECT_EQ(e.digest(), kFnvOffset64);
}

TEST(Hash, IncrementalRespectsSeed) {
  const std::uint64_t seed = 0xb10cfee1u;
  Fnv1a h(seed);
  h.update("abc");
  EXPECT_EQ(h.digest(), fnv1a64("abc", seed));
  EXPECT_NE(h.digest(), fnv1a64("abc"));
}

TEST(Hash, BigramCompositionMatchesJoinedString) {
  // Exactly how embed() hashes a word bigram without materializing it.
  Fnv1a h;
  h.update("hello").update(' ').update("world");
  EXPECT_EQ(h.digest(), fnv1a64("hello world"));
}

// --- strings -------------------------------------------------------------------

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWsDropsEmpty) {
  const auto parts = split_ws("  hello   world \t\n x ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "hello");
  EXPECT_EQ(parts[2], "x");
}

TEST(Strings, JoinRoundTrip) {
  const std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(join(parts, ", "), "a, b, c");
  EXPECT_EQ(join(std::vector<std::string>{}, ","), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, CaseConversion) {
  EXPECT_EQ(to_lower("TP53 And ATM"), "tp53 and atm");
  EXPECT_EQ(to_upper("gy"), "GY");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("%SPDF-1.2", "%SPDF-"));
  EXPECT_FALSE(starts_with("abc", "abcd"));
  EXPECT_TRUE(ends_with("file.spdf", ".spdf"));
  EXPECT_FALSE(ends_with("x", "xx"));
}

TEST(Strings, ContainsCi) {
  EXPECT_TRUE(contains_ci("The Half-Life of Iodine", "half-life"));
  EXPECT_FALSE(contains_ci("abc", "abd"));
  EXPECT_TRUE(contains_ci("anything", ""));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replace_all("x", "", "y"), "x");
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(Strings, FormatParamCount) {
  EXPECT_EQ(format_param_count(7.0), "7 B");
  EXPECT_EQ(format_param_count(1.1), "1.1 B");
}

TEST(Strings, EditDistance) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("abc", "abc"), 0u);
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(edit_distance("", "abc"), 3u);
}

TEST(Strings, StringSimilarityBounds) {
  EXPECT_DOUBLE_EQ(string_similarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(string_similarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(string_similarity("abc", "xyz"), 0.0);
  const double s = string_similarity("cisplatin", "cisplatim");
  EXPECT_GT(s, 0.8);
  EXPECT_LT(s, 1.0);
}

// --- histogram ------------------------------------------------------------------

TEST(SummaryStats, BasicMoments) {
  SummaryStats s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(SummaryStats, MergeMatchesCombined) {
  SummaryStats a;
  SummaryStats b;
  SummaryStats whole;
  for (int i = 0; i < 10; ++i) {
    const double x = i * 0.7;
    (i % 2 == 0 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-12);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-5.0);   // clamps into bin 0
  h.add(100.0);  // clamps into last bin
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, QuantileApproximation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.0), 0.5, 1.0);
  EXPECT_NEAR(h.quantile(1.0), 99.5, 1.0);
}

TEST(Histogram, ExactQuantilesNearestRank) {
  Histogram h(0.0, 100.0, 10);  // coarse bins: exact path must not round
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.p50(), 50.0);
  EXPECT_EQ(h.p95(), 95.0);
  EXPECT_EQ(h.p99(), 99.0);
  EXPECT_EQ(h.exact_quantile(0.0), 1.0);
  EXPECT_EQ(h.exact_quantile(1.0), 100.0);
}

TEST(Histogram, ExactQuantilesSmallSamples) {
  Histogram h(0.0, 10.0, 4);
  h.add(7.0);
  EXPECT_EQ(h.p50(), 7.0);  // single sample is every quantile
  EXPECT_EQ(h.p99(), 7.0);
  h.add(3.0);  // out-of-order insert: quantiles still sort
  EXPECT_EQ(h.p50(), 3.0);  // nearest-rank: ceil(0.5*2) = rank 1
  EXPECT_EQ(h.p99(), 7.0);
}

TEST(Histogram, ExactQuantilesOutlierBeyondBinRange) {
  Histogram h(0.0, 10.0, 4);
  h.add(5.0);
  h.add(5000.0);  // clamped in the bins, exact in the quantiles
  EXPECT_EQ(h.exact_quantile(1.0), 5000.0);
  EXPECT_EQ(h.p99(), 5000.0);
}

TEST(Histogram, ExactQuantilesEmptyIsZero) {
  const Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p95(), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
  EXPECT_EQ(h.p999(), 0.0);
}

TEST(Histogram, P999NearestRankBoundaries) {
  // Below 1000 samples the nearest-rank p99.9 is the maximum: with n
  // samples the rank is ceil(0.999 * n), which stays n until n >= 1001.
  Histogram small(0.0, 100.0, 4);
  for (int i = 1; i <= 999; ++i) small.add(static_cast<double>(i));
  EXPECT_EQ(small.p999(), 999.0);

  // At n = 1000 the 0.999 rank is exactly 999 (an exact-boundary rank:
  // ceil(999.0) must not round up to 1000).
  Histogram exact(0.0, 2000.0, 4);
  for (int i = 1; i <= 1000; ++i) exact.add(static_cast<double>(i));
  EXPECT_EQ(exact.p999(), 999.0);
  EXPECT_EQ(exact.exact_quantile(1.0), 1000.0);

  // Past the boundary one outlier in 2000 samples no longer moves p99.9
  // off the bulk: rank ceil(0.999 * 2000) = 1998.
  Histogram big(0.0, 10.0, 4);
  for (int i = 0; i < 1999; ++i) big.add(1.0);
  big.add(5000.0);
  EXPECT_EQ(big.p999(), 1.0);
  EXPECT_EQ(big.exact_quantile(1.0), 5000.0);
}

TEST(Histogram, P999SingleSampleAndOne) {
  Histogram h(0.0, 10.0, 4);
  h.add(4.0);
  EXPECT_EQ(h.p999(), 4.0);  // n = 1: every quantile is the sample
  EXPECT_EQ(h.exact_quantile(0.0), 4.0);
  EXPECT_EQ(h.exact_quantile(1.0), 4.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, RenderNonEmpty) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);
  const std::string out = h.render();
  EXPECT_NE(out.find('#'), std::string::npos);
}

}  // namespace
}  // namespace mcqa::util
