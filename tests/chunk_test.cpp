// Unit tests for semantic and fixed-size chunking.

#include <gtest/gtest.h>

#include <set>

#include "chunk/chunker.hpp"
#include "corpus/fact_matcher.hpp"
#include "corpus/paper_generator.hpp"
#include "embed/hashed_embedder.hpp"
#include "parse/parsers.hpp"
#include "text/sentence.hpp"
#include "text/tokenizer.hpp"

namespace mcqa::chunk {
namespace {

parse::ParsedDocument sample_doc(std::uint64_t seed = 11) {
  static const corpus::KnowledgeBase kb = corpus::KnowledgeBase::generate(
      corpus::KbConfig{.facts_per_topic = 12, .seed = 9, .math_fraction = 0.4});
  const corpus::PaperGenerator gen(kb, corpus::PaperGenConfig{});
  const corpus::PaperSpec spec =
      gen.generate(0, corpus::DocKind::kFullPaper, util::Rng(seed));
  parse::ParsedDocument doc;
  doc.doc_id = spec.doc_id;
  doc.title = spec.title;
  doc.kind = "paper";
  for (const auto& section : spec.sections) {
    parse::ParsedSection s;
    s.heading = section.heading;
    for (const auto& sentence : section.sentences) {
      if (!s.text.empty()) s.text += ' ';
      s.text += sentence.text;
    }
    doc.sections.push_back(std::move(s));
  }
  return doc;
}

TEST(ChunkId, StableAndUnique) {
  EXPECT_EQ(make_chunk_id("doc", 0), make_chunk_id("doc", 0));
  EXPECT_NE(make_chunk_id("doc", 0), make_chunk_id("doc", 1));
  EXPECT_NE(make_chunk_id("doc_a", 0), make_chunk_id("doc_b", 0));
  // filehash_index shape.
  EXPECT_NE(make_chunk_id("doc", 3).find("_3"), std::string::npos);
}

TEST(SemanticChunker, CoversEverySentenceExactlyOnce) {
  const embed::HashedNGramEmbedder emb;
  const SemanticChunker chunker(emb);
  const parse::ParsedDocument doc = sample_doc();
  const auto chunks = chunker.chunk(doc);
  ASSERT_FALSE(chunks.empty());

  // Concatenated chunk text must contain each section's text exactly
  // (per-section concatenation preserves content and order).
  std::string all;
  for (const auto& c : chunks) {
    all += c.text;
    all += ' ';
  }
  for (const auto& section : doc.sections) {
    const auto sentences = text::split_sentences(section.text);
    for (const auto& s : sentences) {
      EXPECT_NE(all.find(s.text), std::string::npos)
          << "lost sentence: " << s.text;
    }
  }
}

TEST(SemanticChunker, RespectsWordCaps) {
  const embed::HashedNGramEmbedder emb;
  ChunkerConfig cfg;
  cfg.max_words = 120;
  cfg.target_words = 80;
  cfg.min_words = 20;
  const SemanticChunker chunker(emb, cfg);
  const auto chunks = chunker.chunk(sample_doc());
  for (const auto& c : chunks) {
    // A single overlong sentence can exceed the cap; allow slack of one
    // sentence (~40 words).
    EXPECT_LE(c.word_count, cfg.max_words + 40) << c.text;
  }
}

TEST(SemanticChunker, MergesTinyTail) {
  const embed::HashedNGramEmbedder emb;
  ChunkerConfig cfg;
  cfg.min_words = 30;
  const SemanticChunker chunker(emb, cfg);
  const auto chunks = chunker.chunk(sample_doc());
  if (chunks.size() >= 2) {
    EXPECT_GE(chunks.back().word_count, cfg.min_words);
  }
}

TEST(SemanticChunker, UniqueSequentialIds) {
  const embed::HashedNGramEmbedder emb;
  const SemanticChunker chunker(emb);
  const auto chunks = chunker.chunk(sample_doc());
  std::set<std::string> ids;
  for (const auto& c : chunks) {
    EXPECT_TRUE(ids.insert(c.chunk_id).second);
    EXPECT_EQ(c.doc_id, sample_doc().doc_id);
  }
}

TEST(SemanticChunker, DeterministicAcrossRuns) {
  const embed::HashedNGramEmbedder emb;
  const SemanticChunker chunker(emb);
  const auto a = chunker.chunk(sample_doc());
  const auto b = chunker.chunk(sample_doc());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].text, b[i].text);
    EXPECT_EQ(a[i].chunk_id, b[i].chunk_id);
  }
}

TEST(SemanticChunker, EmptyDocYieldsNoChunks) {
  const embed::HashedNGramEmbedder emb;
  const SemanticChunker chunker(emb);
  parse::ParsedDocument empty;
  empty.doc_id = "empty";
  EXPECT_TRUE(chunker.chunk(empty).empty());
}

TEST(SemanticChunker, SectionBoundariesAlwaysBreak) {
  const embed::HashedNGramEmbedder emb;
  const SemanticChunker chunker(emb);
  parse::ParsedDocument doc;
  doc.doc_id = "two_sections";
  doc.sections.push_back(
      {"A", "Alpha beta gamma delta epsilon zeta eta theta iota kappa "
            "lambda mu nu xi omicron pi rho sigma tau upsilon phi chi "
            "psi omega first section closing sentence here now."});
  doc.sections.push_back(
      {"B", "Second section opens with different content entirely and "
            "continues for a good number of additional words to pass "
            "the minimum chunk size threshold comfortably today."});
  const auto chunks = chunker.chunk(doc);
  // No chunk may span both sections.
  for (const auto& c : chunks) {
    const bool has_a = c.text.find("first section closing") != std::string::npos;
    const bool has_b = c.text.find("Second section opens") != std::string::npos;
    EXPECT_FALSE(has_a && has_b);
  }
}

TEST(FixedSizeChunker, OverlapBetweenConsecutiveChunks) {
  ChunkerConfig cfg;
  cfg.target_words = 50;
  cfg.overlap_words = 10;
  cfg.min_words = 10;
  const FixedSizeChunker chunker(cfg);
  const auto chunks = chunker.chunk(sample_doc());
  ASSERT_GE(chunks.size(), 2u);
  // The tail of chunk i must reappear at the head of chunk i+1.
  const auto tail_words = text::word_tokenize(chunks[0].text);
  ASSERT_GE(tail_words.size(), 5u);
  const std::string last_word = tail_words.back().text;
  EXPECT_NE(chunks[1].text.find(last_word), std::string::npos);
}

TEST(FixedSizeChunker, ChunkSizesNearTarget) {
  ChunkerConfig cfg;
  cfg.target_words = 60;
  cfg.overlap_words = 0;
  cfg.min_words = 10;
  const FixedSizeChunker chunker(cfg);
  const auto chunks = chunker.chunk(sample_doc());
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(chunks[i].word_count), 60.0, 8.0);
  }
}

TEST(FixedSizeChunker, WordCountsMatchRecount) {
  // The chunker derives word_count from a whitespace-transition prefix
  // sum over the section body instead of re-tokenizing each chunk; the
  // result must equal counting the chunk text directly.
  ChunkerConfig cfg;
  cfg.target_words = 40;
  cfg.overlap_words = 8;
  cfg.min_words = 10;
  const FixedSizeChunker chunker(cfg);
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    for (const auto& c : chunker.chunk(sample_doc(seed))) {
      EXPECT_EQ(c.word_count, text::count_words(c.text)) << c.chunk_id;
    }
  }
}

TEST(SemanticChunker, WordCountsMatchRecount) {
  // Same invariant for the semantic chunker's running window counter.
  const embed::HashedNGramEmbedder emb;
  const SemanticChunker chunker(emb);
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    for (const auto& c : chunker.chunk(sample_doc(seed))) {
      EXPECT_EQ(c.word_count, text::count_words(c.text)) << c.chunk_id;
    }
  }
}

TEST(FixedSizeChunker, EmptyDoc) {
  const FixedSizeChunker chunker;
  parse::ParsedDocument empty;
  EXPECT_TRUE(chunker.chunk(empty).empty());
}

TEST(Chunkers, FactSurvivalThroughChunking) {
  // Facts realized in the document must be recoverable from at least one
  // chunk (the property RAG depends on).
  static const corpus::KnowledgeBase kb = corpus::KnowledgeBase::generate(
      corpus::KbConfig{.facts_per_topic = 12, .seed = 9, .math_fraction = 0.4});
  const corpus::PaperGenerator gen(kb, corpus::PaperGenConfig{});
  const corpus::PaperSpec spec =
      gen.generate(0, corpus::DocKind::kFullPaper, util::Rng(11));
  const parse::ParsedDocument doc = sample_doc(11);

  const embed::HashedNGramEmbedder emb;
  const SemanticChunker chunker(emb);
  const auto chunks = chunker.chunk(doc);
  const corpus::FactMatcher matcher(kb);

  std::size_t found = 0;
  for (const corpus::FactId f : spec.facts) {
    for (const auto& c : chunks) {
      if (matcher.contains(c.text, f)) {
        ++found;
        break;
      }
    }
  }
  // A fact sentence can only be cut if the chunk boundary lands inside
  // it, which the sentence-aligned chunker never does.
  EXPECT_EQ(found, spec.facts.size());
}

}  // namespace
}  // namespace mcqa::chunk
