// Live store: RCU epoch snapshots, upsert/tombstone semantics,
// deterministic compaction, and the bit-identity contract against a
// from-scratch rebuild at every published epoch.  The
// LiveStoreConcurrency suite is the tsan lane's RCU publish/drain
// surface: lock-free readers racing writers across compactions.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "embed/embedder.hpp"
#include "embed/hashed_embedder.hpp"
#include "index/vector_store.hpp"
#include "serve/live_store.hpp"

namespace mcqa::serve {
namespace {

std::string row_text(int i) {
  return "sepsis cohort protocol note " + std::to_string(i * 13 % 97) +
         " marker " + std::to_string(i);
}

std::string row_id(int i) { return "row-" + std::to_string(i); }

/// From-scratch flat store over the snapshot's live rows — the oracle
/// every published epoch must match bit-for-bit.
index::VectorStore rebuild_flat(const embed::Embedder& embedder,
                                const StoreSnapshot& snap) {
  index::VectorStore store(embedder, index::IndexKind::kFlat);
  for (const auto& [id, text] : snap.live_rows()) store.add(id, text);
  store.build();
  return store;
}

void expect_same_hits(const std::vector<index::Hit>& got,
                      const std::vector<index::Hit>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << "rank " << i;
    EXPECT_EQ(got[i].text, want[i].text) << "rank " << i;
    EXPECT_EQ(got[i].score, want[i].score) << "rank " << i;
  }
}

void expect_matches_rebuild(const embed::Embedder& embedder,
                            const StoreSnapshot& snap) {
  const index::VectorStore oracle = rebuild_flat(embedder, snap);
  ASSERT_EQ(snap.rows(), oracle.size());
  for (const std::string& q :
       {std::string("sepsis cohort protocol"), row_text(3), row_text(17),
        std::string("unrelated query about quasars")}) {
    expect_same_hits(snap.query(q, 5), oracle.query(q, 5));
  }
}

LiveStoreConfig flat_config(std::size_t threshold = 1u << 20) {
  LiveStoreConfig config;
  config.compact_kind = index::IndexKind::kFlat;
  config.compact_threshold = threshold;
  return config;
}

/// SQ8 base with a candidate floor covering any test-sized store, so
/// the rerank-coverage condition holds and results stay exact.
LiveStoreConfig sq8_config(std::size_t threshold = 1u << 20) {
  LiveStoreConfig config;
  config.compact_kind = index::IndexKind::kSq8;
  config.compact_threshold = threshold;
  config.min_candidates = 4096;
  return config;
}

TEST(LiveStoreTest, EmptyStoreQueriesAndPublishes) {
  const embed::HashedNGramEmbedder embedder;
  LiveStore store(embedder);
  const auto snap = store.snapshot();
  EXPECT_EQ(snap->epoch(), 0u);
  EXPECT_EQ(snap->rows(), 0u);
  EXPECT_TRUE(snap->query("anything", 5).empty());
  EXPECT_TRUE(snap->live_rows().empty());

  // Publishing with nothing buffered still advances the epoch.
  const auto next = store.publish(12.5);
  EXPECT_EQ(next->epoch(), 1u);
  EXPECT_EQ(next->published_at_ms(), 12.5);
  EXPECT_EQ(next->rows(), 0u);
  EXPECT_EQ(store.epoch(), 1u);
}

TEST(LiveStoreTest, AppendsInvisibleUntilPublish) {
  const embed::HashedNGramEmbedder embedder;
  LiveStore store(embedder, flat_config());
  for (int i = 0; i < 8; ++i) store.append(row_id(i), row_text(i));
  EXPECT_EQ(store.pending(), 8u);
  EXPECT_EQ(store.snapshot()->rows(), 0u);

  store.publish();
  EXPECT_EQ(store.pending(), 0u);
  const auto snap = store.snapshot();
  EXPECT_EQ(snap->epoch(), 1u);
  EXPECT_EQ(snap->rows(), 8u);
  EXPECT_EQ(snap->delta_segments(), 1u);
  expect_matches_rebuild(embedder, *snap);
}

TEST(LiveStoreTest, SnapshotOutlivesLaterEpochs) {
  const embed::HashedNGramEmbedder embedder;
  LiveStore store(embedder, flat_config());
  for (int i = 0; i < 6; ++i) store.append(row_id(i), row_text(i));
  store.publish();

  const auto old_snap = store.snapshot();
  const auto old_hits = old_snap->query("sepsis cohort protocol", 5);

  for (int i = 6; i < 40; ++i) store.append(row_id(i), row_text(i));
  store.publish();
  store.tombstone(row_id(0));
  store.publish();

  // The pinned epoch still answers from its own immutable state.
  EXPECT_EQ(old_snap->epoch(), 1u);
  EXPECT_EQ(old_snap->rows(), 6u);
  expect_same_hits(old_snap->query("sepsis cohort protocol", 5), old_hits);
  EXPECT_EQ(store.snapshot()->epoch(), 3u);
  EXPECT_EQ(store.snapshot()->rows(), 39u);
}

TEST(LiveStoreTest, UpsertReplacesLiveRow) {
  const embed::HashedNGramEmbedder embedder;
  LiveStore store(embedder, flat_config());
  store.append("doc", "version one of the payload");
  store.publish();
  store.append("doc", "version two of the payload");
  store.publish();

  const auto snap = store.snapshot();
  EXPECT_EQ(snap->rows(), 1u);
  EXPECT_EQ(snap->tombstones(), 1u);
  const auto rows = snap->live_rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].first, "doc");
  EXPECT_EQ(rows[0].second, "version two of the payload");
  expect_matches_rebuild(embedder, *snap);
}

TEST(LiveStoreTest, UpsertBeforeFirstPublishTombstonesPendingRow) {
  const embed::HashedNGramEmbedder embedder;
  LiveStore store(embedder, flat_config());
  store.append("doc", "first draft");
  store.append("doc", "second draft");
  store.publish();
  const auto snap = store.snapshot();
  EXPECT_EQ(snap->rows(), 1u);
  const auto rows = snap->live_rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].second, "second draft");
  expect_matches_rebuild(embedder, *snap);
}

TEST(LiveStoreTest, TombstoneFiltersTopKExactly) {
  const embed::HashedNGramEmbedder embedder;
  LiveStore store(embedder, flat_config());
  for (int i = 0; i < 24; ++i) store.append(row_id(i), row_text(i));
  store.publish();

  const auto before = store.snapshot()->query(row_text(7), 3);
  ASSERT_FALSE(before.empty());
  EXPECT_EQ(before[0].id, row_id(7));

  EXPECT_TRUE(store.tombstone(row_id(7)));
  EXPECT_FALSE(store.tombstone(row_id(7)));  // no longer live
  EXPECT_FALSE(store.tombstone("never-existed"));
  store.publish();

  const auto snap = store.snapshot();
  EXPECT_EQ(snap->rows(), 23u);
  for (const index::Hit& hit : snap->query(row_text(7), 5)) {
    EXPECT_NE(hit.id, row_id(7));
  }
  expect_matches_rebuild(embedder, *snap);
}

TEST(LiveStoreTest, SeededFromFlatStoreIsBitIdentical) {
  const embed::HashedNGramEmbedder embedder;
  index::VectorStore seed(embedder, index::IndexKind::kFlat);
  for (int i = 0; i < 32; ++i) seed.add(row_id(i), row_text(i));
  seed.build();

  for (const auto& config : {flat_config(), sq8_config()}) {
    LiveStore store(seed, config);
    const auto snap = store.snapshot();
    EXPECT_EQ(snap->epoch(), 1u);
    EXPECT_EQ(snap->rows(), 32u);
    EXPECT_EQ(snap->base_rows(), 32u);
    EXPECT_EQ(snap->delta_segments(), 0u);
    for (const std::string& q : {row_text(4), row_text(21)}) {
      expect_same_hits(snap->query(q, 5), seed.query(q, 5));
    }
  }
}

TEST(LiveStoreTest, CompactionFoldsDeltasAndTombstones) {
  const embed::HashedNGramEmbedder embedder;
  LiveStore store(embedder, sq8_config(/*threshold=*/16));
  for (int round = 0; round < 4; ++round) {
    for (int i = round * 8; i < (round + 1) * 8; ++i) {
      store.append(row_id(i), row_text(i));
    }
    if (round > 0) store.tombstone(row_id(round));  // retire an old row
    store.publish();
  }
  EXPECT_GE(store.compactions(), 1u);

  const auto snap = store.snapshot();
  EXPECT_EQ(snap->rows(), 32u - 3u);
  // The last fold rebuilt the base and cleared the delta/tombstone tail.
  EXPECT_LE(snap->tombstones() + snap->delta_rows(), 16u);
  expect_matches_rebuild(embedder, *snap);

  // Mutations keep working against the rebuilt base (ordinals remapped).
  EXPECT_TRUE(store.tombstone(row_id(20)));
  store.append(row_id(5), "refreshed payload for row five");
  store.publish();
  expect_matches_rebuild(embedder, *store.snapshot());
}

TEST(LiveStoreTest, EveryEpochMatchesFromScratchRebuild) {
  const embed::HashedNGramEmbedder embedder;
  // Threshold low enough that the script crosses several compactions.
  for (const auto& config : {flat_config(12), sq8_config(12)}) {
    LiveStore store(embedder, config);
    int next_row = 0;
    for (int epoch = 0; epoch < 10; ++epoch) {
      for (int j = 0; j < 5; ++j) {
        store.append(row_id(next_row), row_text(next_row));
        ++next_row;
      }
      if (epoch % 2 == 1) store.tombstone(row_id(epoch));
      if (epoch % 3 == 2) store.append(row_id(1), row_text(90 + epoch));
      store.publish(epoch * 10.0);
      expect_matches_rebuild(embedder, *store.snapshot());
    }
    EXPECT_GE(store.compactions(), 1u);
  }
}

TEST(LiveStoreTest, CompactionIsDeterministic) {
  const embed::HashedNGramEmbedder embedder;
  const auto run = [&embedder] {
    LiveStore store(embedder, sq8_config(/*threshold=*/8));
    for (int i = 0; i < 30; ++i) {
      store.append(row_id(i), row_text(i));
      if (i % 5 == 4) {
        store.tombstone(row_id(i - 3));
        store.publish();
      }
    }
    store.publish();
    return store.snapshot();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a->epoch(), b->epoch());
  EXPECT_EQ(a->rows(), b->rows());
  EXPECT_EQ(a->live_rows(), b->live_rows());
  for (const std::string& q : {row_text(11), row_text(28)}) {
    expect_same_hits(a->query(q, 6), b->query(q, 6));
  }
}

// --- tsan surface: lock-free readers racing the writer ----------------------

TEST(LiveStoreConcurrency, ReadersNeverBlockDuringPublish) {
  const embed::HashedNGramEmbedder embedder;
  LiveStore store(embedder, sq8_config(/*threshold=*/24));
  for (int i = 0; i < 16; ++i) store.append(row_id(i), row_text(i));
  store.publish();

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&store, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        const auto snap = store.snapshot();
        // Each snapshot must be internally consistent however many
        // epochs the writer publishes meanwhile.
        const auto hits = snap->query("sepsis cohort protocol", 5);
        EXPECT_LE(hits.size(), 5u);
        EXPECT_LE(hits.size(), snap->rows());
        EXPECT_EQ(snap->live_rows().size(), snap->rows());
      }
    });
  }

  for (int i = 16; i < 112; ++i) {
    store.append(row_id(i), row_text(i));
    if (i % 7 == 0) store.tombstone(row_id(i - 10));
    if (i % 4 == 0) store.publish(i * 1.0);
  }
  store.publish();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_GE(store.compactions(), 1u);
  expect_matches_rebuild(embedder, *store.snapshot());
}

TEST(LiveStoreConcurrency, PinnedSnapshotStableUnderWriterChurn) {
  const embed::HashedNGramEmbedder embedder;
  LiveStore store(embedder, sq8_config(/*threshold=*/16));
  for (int i = 0; i < 12; ++i) store.append(row_id(i), row_text(i));
  store.publish();

  const auto pinned = store.snapshot();
  const auto want = pinned->query(row_text(3), 4);

  std::thread writer([&store] {
    for (int i = 12; i < 140; ++i) {
      store.append(row_id(i), row_text(i));
      if (i % 3 == 0) store.publish();
    }
    store.publish();
  });
  for (int probe = 0; probe < 50; ++probe) {
    expect_same_hits(pinned->query(row_text(3), 4), want);
  }
  writer.join();

  EXPECT_EQ(pinned->epoch(), 1u);
  EXPECT_EQ(pinned->rows(), 12u);
  EXPECT_GT(store.snapshot()->epoch(), pinned->epoch());
}

TEST(LiveStoreConcurrency, ConcurrentWritersSerialize) {
  const embed::HashedNGramEmbedder embedder;
  LiveStore store(embedder, sq8_config(/*threshold=*/32));
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&store, w] {
      for (int i = 0; i < 25; ++i) {
        store.append("w" + std::to_string(w) + "-" + std::to_string(i),
                     row_text(w * 100 + i));
        if (i % 6 == 5) store.publish();
      }
    });
  }
  for (auto& t : writers) t.join();
  store.publish();

  const auto snap = store.snapshot();
  EXPECT_EQ(snap->rows(), 100u);
  expect_matches_rebuild(embedder, *snap);
}

}  // namespace
}  // namespace mcqa::serve
