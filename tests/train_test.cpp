// Trainable student subsystem (src/train + the 9th/10th roster rows):
//
//  * seeded init and the full SGD loop are byte-identical across
//    runs, across 1/2/8-thread pools, and across a serialize/restore
//    round trip (the lane-summation discipline from index/kernels,
//    transposed to gradient reduction);
//  * the class-factored softmax is a proper distribution and SGD
//    actually lowers held-out perplexity over the untrained init;
//  * TrainedStudent answers MCQs by likelihood ranking, preferring
//    continuations it was trained on;
//  * eval-cell keys for trainable models move with the (training
//    config, training data) fingerprint — flipping one training doc
//    invalidates exactly the trainable cells — and extending the sweep
//    roster leaves every frozen-8 cell byte-identical.
//
// Suites Train* also run under the tsan preset (minibatch lane fan-out
// and the element-parallel SGD step are a concurrency surface).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/eval_cache.hpp"
#include "core/pipeline.hpp"
#include "eval/harness.hpp"
#include "llm/trained_student.hpp"
#include "parallel/thread_pool.hpp"
#include "text/bpe_cache.hpp"
#include "train/batching.hpp"
#include "train/lbl_model.hpp"
#include "train/train_io.hpp"
#include "train/trainer.hpp"

namespace {

using namespace mcqa;

/// Small but non-trivial training text with a strongly repeated
/// pattern the model can learn.
std::string sample_text() {
  std::string text;
  for (int i = 0; i < 160; ++i) {
    text += "the spectral line of ionized helium appears in hot stars. ";
    text += "dust grains scatter blue light more than red light. ";
    text += "the answer is helium because the line is ionized helium. ";
  }
  return text;
}

train::TrainConfig small_config() {
  train::TrainConfig cfg;
  cfg.bpe_vocab = 300;
  cfg.model.dim = 16;
  cfg.epochs = 2;
  cfg.minibatch = 64;
  return cfg;
}

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    path = std::filesystem::temp_directory_path() /
           ("mcqa-train-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter()++));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  static std::atomic<int>& counter() {
    static std::atomic<int> c{0};
    return c;
  }
};

TEST(TrainLbl, SeededInitDeterministic) {
  train::LblConfig cfg;
  cfg.dim = 8;
  const train::LblModel a = train::LblModel::init(cfg, 50);
  const train::LblModel b = train::LblModel::init(cfg, 50);
  EXPECT_EQ(a.weights_digest(), b.weights_digest());
  EXPECT_EQ(a.params(), b.params());

  train::LblConfig other = cfg;
  other.seed = cfg.seed + 1;
  const train::LblModel c = train::LblModel::init(other, 50);
  EXPECT_NE(a.weights_digest(), c.weights_digest());

  // Equal-size contiguous classes: no corpus statistics in the
  // partition, every class non-empty, sizes differ by at most one.
  std::size_t lo = a.vocab_size(), hi = 0;
  for (std::uint32_t c = 0; c < a.class_count(); ++c) {
    lo = std::min(lo, a.class_size(c));
    hi = std::max(hi, a.class_size(c));
  }
  EXPECT_GE(lo, 1u);
  EXPECT_LE(hi - lo, 1u);
}

TEST(TrainLbl, ClassFactoredSoftmaxNormalized) {
  train::LblConfig cfg;
  cfg.dim = 8;
  const train::LblModel m = train::LblModel::init(cfg, 40);
  std::vector<std::uint32_t> hist(cfg.context, m.bos_id());
  hist.back() = 3;
  double total = 0.0;
  for (std::uint32_t w = 0; w < m.vocab_size(); ++w) {
    total += std::exp(m.log_prob(hist.data(), w));
  }
  EXPECT_NEAR(total, 1.0, 1e-4);
}

TEST(TrainLbl, MinibatchScheduleIsSeededPermutation) {
  const train::MinibatchSchedule s(100, 32, /*seed=*/9, /*epoch=*/1);
  EXPECT_EQ(s.minibatch_count(), 4u);  // 32+32+32+4
  std::vector<bool> seen(100, false);
  std::size_t n = 0;
  for (std::size_t mb = 0; mb < s.minibatch_count(); ++mb) {
    const std::uint32_t* begin = s.batch_begin(mb);
    for (std::size_t i = 0; i < s.batch_size(mb); ++i, ++n) {
      ASSERT_LT(begin[i], 100u);
      EXPECT_FALSE(seen[begin[i]]);
      seen[begin[i]] = true;
    }
  }
  EXPECT_EQ(n, 100u);
  // Same (seed, epoch) reproduces the order; the next epoch reshuffles.
  const train::MinibatchSchedule same(100, 32, 9, 1);
  EXPECT_EQ(same.batch_begin(0)[0], s.batch_begin(0)[0]);
  const train::MinibatchSchedule next(100, 32, 9, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < 32; ++i) {
    any_diff = any_diff || next.batch_begin(0)[i] != s.batch_begin(0)[i];
  }
  EXPECT_TRUE(any_diff);
}

TEST(TrainDeterminism, ByteIdenticalAcrossThreadCounts) {
  const std::string text = sample_text();
  const train::TrainConfig cfg = small_config();
  parallel::ThreadPool pool1(1);
  parallel::ThreadPool pool2(2);
  parallel::ThreadPool pool8(8);
  const train::TrainedLm a = train::train_lbl(text, cfg, &pool1);
  const train::TrainedLm b = train::train_lbl(text, cfg, &pool2);
  const train::TrainedLm c = train::train_lbl(text, cfg, &pool8);
  EXPECT_EQ(a.model.weights_digest(), b.model.weights_digest());
  EXPECT_EQ(a.model.weights_digest(), c.model.weights_digest());
  EXPECT_EQ(a.model.params(), c.model.params());
  EXPECT_EQ(a.report.final_epoch_loss, c.report.final_epoch_loss);
  EXPECT_EQ(a.report.held_out_perplexity, c.report.held_out_perplexity);
  EXPECT_EQ(train::serialize_trained(a), train::serialize_trained(c));
}

TEST(TrainDeterminism, RunToRun) {
  const std::string text = sample_text();
  const train::TrainConfig cfg = small_config();
  const train::TrainedLm a = train::train_lbl(text, cfg);
  const train::TrainedLm b = train::train_lbl(text, cfg);
  EXPECT_EQ(train::serialize_trained(a), train::serialize_trained(b));
}

TEST(TrainDeterminism, WarmRestoreMatchesColdTrain) {
  const std::string text = sample_text();
  const train::TrainConfig cfg = small_config();
  const train::TrainedLm cold = train::train_lbl(text, cfg);
  const std::string blob = train::serialize_trained(cold);
  const train::TrainedLm warm = train::deserialize_trained(blob);
  EXPECT_EQ(cold.model.params(), warm.model.params());
  EXPECT_EQ(cold.report.held_out_perplexity, warm.report.held_out_perplexity);
  EXPECT_EQ(cold.bpe->vocab_size(), warm.bpe->vocab_size());
  // Round trip is a fixed point.
  EXPECT_EQ(blob, train::serialize_trained(warm));
  // Truncated blobs throw (callers treat that as a cache miss).
  EXPECT_THROW(train::deserialize_trained(
                   std::string_view(blob).substr(0, blob.size() / 2)),
               std::exception);
}

TEST(TrainDeterminism, SgdLowersHeldOutPerplexity) {
  const std::string text = sample_text();
  const train::TrainConfig trained_cfg = small_config();
  train::TrainConfig untrained_cfg = trained_cfg;
  untrained_cfg.epochs = 0;
  const train::TrainedLm trained = train::train_lbl(text, trained_cfg);
  const train::TrainedLm untrained = train::train_lbl(text, untrained_cfg);
  EXPECT_LT(trained.report.held_out_perplexity,
            untrained.report.held_out_perplexity);
  EXPECT_GT(trained.report.minibatches, 0u);
  EXPECT_EQ(untrained.report.minibatches, 0u);
}

TEST(TrainStudent, AnswerPicksSeenContinuation) {
  llm::TrainedStudentConfig cfg;
  cfg.train = small_config();
  cfg.train.epochs = 6;
  cfg.name = "lbl-test";
  const llm::TrainedStudent student =
      llm::TrainedStudent::train(sample_text(), cfg);

  llm::McqTask task;
  task.stem = "the spectral line of ionized";
  task.options = {"granite", "helium", "plastic"};
  const llm::AnswerResult out = student.answer(task);
  EXPECT_EQ(out.chosen_index, 1);
  EXPECT_NE(out.text.find("(B)"), std::string::npos);
  EXPECT_NE(out.text.find("likelihood-ranked"), std::string::npos);
}

TEST(TrainStudent, RestoreAnswersIdentically) {
  llm::TrainedStudentConfig cfg;
  cfg.train = small_config();
  cfg.name = "lbl-test";
  const std::string text = sample_text();
  const llm::TrainedStudent cold = llm::TrainedStudent::train(text, cfg);
  const llm::TrainedStudent warm = llm::TrainedStudent::restore(
      cold.serialize(), cfg, cold.fingerprint());
  EXPECT_EQ(cold.fingerprint(), warm.fingerprint());

  llm::McqTask task;
  task.stem = "dust grains scatter";
  task.options = {"blue light", "gamma rays", "neutrinos", "sound"};
  const llm::AnswerResult a = cold.answer(task);
  const llm::AnswerResult b = warm.answer(task);
  EXPECT_EQ(a.chosen_index, b.chosen_index);
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.confidence, b.confidence);
}

TEST(TrainBpeCache, SharedVocabSingleCodePath) {
  const std::string text = sample_text();
  const auto before = text::bpe_cache_stats();
  const auto a = text::shared_bpe(text, 300);
  const auto b = text::shared_bpe(text, 300);
  EXPECT_EQ(a.get(), b.get());  // one cached vocab per (corpus, budget)
  const auto c = text::shared_bpe(text, 310);
  EXPECT_NE(a.get(), c.get());  // budget is part of the key
  const auto after = text::bpe_cache_stats();
  EXPECT_GE(after.hits, before.hits + 1);
}

TEST(TrainCellKeys, FingerprintTracksConfigAndData) {
  const train::TrainConfig cfg = small_config();
  const std::string docs_a = "doc one.\ndoc two.\ndoc three.\n";
  const std::string docs_b = "doc one.\ndoc 2!\ndoc three.\n";  // one flipped
  const std::uint64_t fp_a = train::trained_model_fingerprint(cfg, docs_a);
  const std::uint64_t fp_b = train::trained_model_fingerprint(cfg, docs_b);
  EXPECT_NE(fp_a, fp_b);
  train::TrainConfig cfg2 = cfg;
  cfg2.epochs += 1;
  EXPECT_NE(fp_a, train::trained_model_fingerprint(cfg2, docs_a));
  // Stable across calls (it feeds persistent cache keys).
  EXPECT_EQ(fp_a, train::trained_model_fingerprint(cfg, docs_a));
}

TEST(TrainCellKeys, FlipTrainingDocInvalidatesOnlyTrainableCells) {
  TempDir dir;
  const core::EvalCellCache cache(dir.path.string(), /*sweep_key=*/42);
  eval::Accuracy acc;
  acc.correct = 3;
  acc.total = 5;

  const train::TrainConfig cfg = small_config();
  const std::string name = "lbl-cellkey-test";
  core::register_model_fingerprint(
      name, train::trained_model_fingerprint(cfg, "doc one.\ndoc two.\n"));

  cache.store("frozen-stub", rag::Condition::kBaseline, acc);
  cache.store(name, rag::Condition::kBaseline, acc);
  EXPECT_TRUE(cache.load("frozen-stub", rag::Condition::kBaseline, 5)
                  .has_value());
  EXPECT_TRUE(cache.load(name, rag::Condition::kBaseline, 5).has_value());

  // "Edit one training document": the trainable model's fingerprint
  // moves, so only its cells miss; the frozen row still hits.
  core::register_model_fingerprint(
      name, train::trained_model_fingerprint(cfg, "doc one.\ndoc 2!\n"));
  EXPECT_TRUE(cache.load("frozen-stub", rag::Condition::kBaseline, 5)
                  .has_value());
  EXPECT_FALSE(cache.load(name, rag::Condition::kBaseline, 5).has_value());

  core::register_model_fingerprint(name, 0);  // unregister for other tests
}

constexpr double kTestScale = 0.008;

const core::PipelineContext& test_context() {
  static const core::PipelineContext ctx([] {
    core::PipelineConfig cfg = core::PipelineConfig::paper_scale(kTestScale);
    cfg.threads = 4;
    cfg.checkpoint_dir.clear();
    return cfg;
  }());
  return ctx;
}

TEST(TrainRoster, FrozenCellBytesUnchangedByExtendedSweep) {
  const auto& ctx = test_context();
  std::vector<qgen::McqRecord> records = ctx.benchmark();
  if (records.size() > 16) records.resize(16);

  parallel::ThreadPool pool(4);
  eval::HarnessConfig hc;
  hc.pool = &pool;
  const eval::EvalHarness harness(ctx.rag(), hc);
  const auto conditions = eval::all_conditions();

  const eval::SweepResult frozen = harness.sweep(
      ctx.student_ptrs(), ctx.student_specs(), records, conditions);
  const eval::SweepResult extended = harness.sweep(
      ctx.extended_student_ptrs(), ctx.extended_student_specs(), records,
      conditions);

  // The extended grid appends rows; the frozen-8 prefix must be
  // byte-identical down to the serialized cell artifact.
  ASSERT_EQ(extended.cells.size(),
            frozen.cells.size() + 2 * conditions.size());
  for (std::size_t i = 0; i < frozen.cells.size(); ++i) {
    const auto& f = frozen.cells[i];
    const auto& e = extended.cells[i];
    core::EvalCellArtifact fa, ea;
    fa.model = f.model;
    fa.condition = static_cast<std::int64_t>(f.condition);
    fa.correct = f.accuracy.correct;
    fa.total = f.accuracy.total;
    fa.unparseable = f.accuracy.unparseable;
    ea.model = e.model;
    ea.condition = static_cast<std::int64_t>(e.condition);
    ea.correct = e.accuracy.correct;
    ea.total = e.accuracy.total;
    ea.unparseable = e.accuracy.unparseable;
    EXPECT_EQ(core::serialize_eval_cell(fa), core::serialize_eval_cell(ea));
  }

  // The appended rows are the trainable pair, in roster order, and
  // their fingerprints are registered for eval-cell keying.
  const auto& roster = ctx.trained_roster();
  EXPECT_EQ(extended.cells[frozen.cells.size()].model, roster.traces->name());
  EXPECT_EQ(core::registered_model_fingerprint(roster.traces->name()),
            roster.traces->fingerprint());
  EXPECT_EQ(core::registered_model_fingerprint(roster.chunks->name()),
            roster.chunks->fingerprint());
  EXPECT_NE(roster.traces->fingerprint(), roster.chunks->fingerprint());
}

TEST(TrainRoster, CheckpointWarmRestoreByteIdentical) {
  const std::string text = sample_text();
  const train::TrainConfig cfg = small_config();
  TempDir dir;
  const core::ArtifactCache cache(dir.path.string());
  const std::uint64_t key = train::trained_checkpoint_key(
      core::code_fingerprint(), cfg, text);

  // Cold: train and store, the way trained_roster() does.
  const train::TrainedLm cold = train::train_lbl(text, cfg);
  cache.store("trained-lbl", key, train::serialize_trained(cold));

  // Warm: the blob round-trips byte-identically.
  const auto blob = cache.load("trained-lbl", key);
  ASSERT_TRUE(blob.has_value());
  const train::TrainedLm warm = train::deserialize_trained(*blob);
  EXPECT_EQ(train::serialize_trained(warm), train::serialize_trained(cold));

  // A different config or different text keys elsewhere.
  train::TrainConfig other = cfg;
  other.step_size *= 2.0;
  EXPECT_NE(key, train::trained_checkpoint_key(core::code_fingerprint(),
                                               other, text));
  EXPECT_NE(key, train::trained_checkpoint_key(core::code_fingerprint(), cfg,
                                               text + "x"));
}

}  // namespace
