// Tests for the Argo-Proxy batch client simulation and sub-domain
// organization.

#include <gtest/gtest.h>

#include <set>

#include "corpus/fact_matcher.hpp"
#include "corpus/realization.hpp"
#include "llm/argo_proxy.hpp"
#include "qgen/benchmark_builder.hpp"

namespace mcqa::llm {
namespace {

const corpus::KnowledgeBase& test_kb() {
  static const corpus::KnowledgeBase kb = corpus::KnowledgeBase::generate(
      corpus::KbConfig{.facts_per_topic = 12, .seed = 101, .math_fraction = 0.4});
  return kb;
}

std::vector<chunk::Chunk> test_chunks(std::size_t n) {
  std::vector<chunk::Chunk> chunks;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& f = test_kb().facts()[i % test_kb().facts().size()];
    chunk::Chunk c;
    c.chunk_id = "proxychunk_" + std::to_string(i);
    c.doc_id = "doc";
    c.text = corpus::realize_statement(test_kb(), f, 0);
    chunks.push_back(std::move(c));
  }
  return chunks;
}

TEST(ProxyStats, EmptyStatsRatesAreZeroNotNan) {
  const ProxyStats stats;  // nothing recorded: all denominators zero
  EXPECT_EQ(stats.throughput_per_s(), 0.0);
  EXPECT_EQ(stats.retry_rate(), 0.0);
  EXPECT_EQ(stats.failure_rate(), 0.0);
  EXPECT_EQ(stats.mean_batch_fill(), 0.0);
}

TEST(ProxyStats, RatesMatchCountersWhenPopulated) {
  ProxyStats stats;
  stats.requests = 100;
  stats.batches = 25;
  stats.attempts = 110;
  stats.retries = 11;
  stats.permanent_failures = 2;
  stats.simulated_wall_ms = 500.0;
  EXPECT_DOUBLE_EQ(stats.throughput_per_s(), 200.0);
  EXPECT_DOUBLE_EQ(stats.retry_rate(), 0.1);
  EXPECT_DOUBLE_EQ(stats.failure_rate(), 0.02);
  EXPECT_DOUBLE_EQ(stats.mean_batch_fill(), 4.0);
}

TEST(ArgoProxy, AllRequestsSucceedWithLowFailureRate) {
  const corpus::FactMatcher matcher(test_kb());
  const TeacherModel teacher(test_kb(), matcher);
  ProxyConfig cfg;
  cfg.transient_failure_rate = 0.05;
  cfg.max_retries = 4;
  const BatchTeacherClient client(teacher, cfg);

  ProxyStats stats;
  const auto drafts = client.generate_mcqs(test_chunks(100), &stats);
  EXPECT_EQ(drafts.size(), 100u);
  EXPECT_EQ(stats.requests, 100u);
  EXPECT_EQ(stats.permanent_failures, 0u);  // P(5 fails) ~ 3e-7 per req
  // Fact-bearing chunks must produce drafts.
  std::size_t produced = 0;
  for (const auto& d : drafts) produced += d.has_value() ? 1 : 0;
  EXPECT_GT(produced, 90u);
}

TEST(ArgoProxy, DeterministicAcrossRuns) {
  const corpus::FactMatcher matcher(test_kb());
  const TeacherModel teacher(test_kb(), matcher);
  const BatchTeacherClient client(teacher, ProxyConfig{});
  ProxyStats a;
  ProxyStats b;
  const auto d1 = client.generate_mcqs(test_chunks(64), &a);
  const auto d2 = client.generate_mcqs(test_chunks(64), &b);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_DOUBLE_EQ(a.simulated_wall_ms, b.simulated_wall_ms);
  ASSERT_EQ(d1.size(), d2.size());
  for (std::size_t i = 0; i < d1.size(); ++i) {
    EXPECT_EQ(d1[i].has_value(), d2[i].has_value());
    if (d1[i].has_value()) {
      EXPECT_EQ(d1[i]->stem, d2[i]->stem);
    }
  }
}

TEST(ArgoProxy, CertainFailureExhaustsRetries) {
  const corpus::FactMatcher matcher(test_kb());
  const TeacherModel teacher(test_kb(), matcher);
  ProxyConfig cfg;
  cfg.transient_failure_rate = 1.0;
  cfg.max_retries = 2;
  const BatchTeacherClient client(teacher, cfg);
  ProxyStats stats;
  const auto drafts = client.generate_mcqs(test_chunks(10), &stats);
  EXPECT_EQ(stats.permanent_failures, 10u);
  EXPECT_EQ(stats.attempts, 30u);  // 1 + 2 retries each
  for (const auto& d : drafts) EXPECT_FALSE(d.has_value());
}

TEST(ArgoProxy, RetriesHappenAtModerateRates) {
  const corpus::FactMatcher matcher(test_kb());
  const TeacherModel teacher(test_kb(), matcher);
  ProxyConfig cfg;
  cfg.transient_failure_rate = 0.3;
  const BatchTeacherClient client(teacher, cfg);
  ProxyStats stats;
  client.generate_mcqs(test_chunks(200), &stats);
  EXPECT_GT(stats.retries, 30u);
  EXPECT_GT(stats.attempts, stats.requests);
}

TEST(ArgoProxy, BatchCountMatchesCeilDivision) {
  const corpus::FactMatcher matcher(test_kb());
  const TeacherModel teacher(test_kb(), matcher);
  ProxyConfig cfg;
  cfg.batch_size = 8;
  cfg.transient_failure_rate = 0.0;
  const BatchTeacherClient client(teacher, cfg);
  ProxyStats stats;
  client.generate_mcqs(test_chunks(20), &stats);
  EXPECT_EQ(stats.batches, 3u);  // ceil(20/8)
}

TEST(ArgoProxy, LargerBatchesAmortizeOverhead) {
  const corpus::FactMatcher matcher(test_kb());
  const TeacherModel teacher(test_kb(), matcher);
  const auto wall = [&](std::size_t batch_size) {
    ProxyConfig cfg;
    cfg.batch_size = batch_size;
    cfg.workers = 1;
    cfg.transient_failure_rate = 0.0;
    const BatchTeacherClient client(teacher, cfg);
    ProxyStats stats;
    client.generate_mcqs(test_chunks(128), &stats);
    return stats.simulated_wall_ms;
  };
  // With fixed per-call overhead, batch=1 pays it 128x; batch=32 pays 4x.
  EXPECT_GT(wall(1), wall(32) * 1.5);
}

TEST(ArgoProxy, MoreWorkersShrinkMakespan) {
  const corpus::FactMatcher matcher(test_kb());
  const TeacherModel teacher(test_kb(), matcher);
  const auto wall = [&](std::size_t workers) {
    ProxyConfig cfg;
    cfg.workers = workers;
    cfg.batch_size = 4;
    cfg.transient_failure_rate = 0.0;
    const BatchTeacherClient client(teacher, cfg);
    ProxyStats stats;
    client.generate_mcqs(test_chunks(128), &stats);
    return stats.simulated_wall_ms;
  };
  EXPECT_GT(wall(1), wall(8) * 3.0);  // near-linear on uniform batches
}

TEST(ArgoProxy, AttemptFailureIsPerAttempt) {
  const corpus::FactMatcher matcher(test_kb());
  const TeacherModel teacher(test_kb(), matcher);
  ProxyConfig cfg;
  cfg.transient_failure_rate = 0.5;
  const BatchTeacherClient client(teacher, cfg);
  // The same request either fails or not deterministically per attempt,
  // and different attempts are independent draws.
  bool any_differ = false;
  for (int i = 0; i < 50 && !any_differ; ++i) {
    const std::string id = "req_" + std::to_string(i);
    any_differ = client.attempt_fails(id, 0) != client.attempt_fails(id, 1);
  }
  EXPECT_TRUE(any_differ);
  EXPECT_EQ(client.attempt_fails("fixed", 0),
            client.attempt_fails("fixed", 0));
}

// --- sub-domain organization -----------------------------------------------------

TEST(SubDomain, EveryTopicMapsToAKnownSubDomain) {
  const std::set<std::string_view> known{
      "molecular-mechanisms", "clinical-radiotherapy", "radiation-physics"};
  std::set<std::string_view> seen;
  for (const auto topic : corpus::topic_bank()) {
    const auto sd = corpus::sub_domain_of_topic(topic);
    EXPECT_TRUE(known.contains(sd)) << topic << " -> " << sd;
    seen.insert(sd);
  }
  // The taxonomy actually partitions into all three.
  EXPECT_EQ(seen.size(), 3u);
}

TEST(SubDomain, BenchmarkRecordsCarrySubDomain) {
  const corpus::FactMatcher matcher(test_kb());
  const TeacherModel teacher(test_kb(), matcher);
  std::vector<chunk::Chunk> chunks = test_chunks(80);
  const qgen::BenchmarkBuilder builder(teacher);
  const auto records = builder.build(chunks);
  ASSERT_FALSE(records.empty());
  for (const auto& r : records) {
    EXPECT_FALSE(r.sub_domain.empty()) << r.record_id;
    // Consistent with the probed fact's topic.
    const auto& topic = test_kb().topic(test_kb().fact(r.fact).topic);
    EXPECT_EQ(r.sub_domain, corpus::sub_domain_of_topic(topic.name));
  }
}

TEST(SubDomain, SurvivesJsonRoundTrip) {
  qgen::McqRecord r;
  r.sub_domain = "radiation-physics";
  const qgen::McqRecord back = qgen::McqRecord::from_json(r.to_json());
  EXPECT_EQ(back.sub_domain, "radiation-physics");
}

}  // namespace
}  // namespace mcqa::llm
