// Unit + property tests for the vector-index substrate (FAISS stand-in).

#include <gtest/gtest.h>

#include <memory>

#include "embed/hashed_embedder.hpp"
#include "index/quantized.hpp"
#include "index/vector_index.hpp"
#include "index/vector_store.hpp"
#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"

namespace mcqa::index {
namespace {

std::vector<embed::Vector> random_unit_vectors(std::size_t n, std::size_t dim,
                                               std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<embed::Vector> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    embed::Vector v(dim);
    for (auto& x : v) x = static_cast<float>(rng.normal());
    embed::normalize(v);
    out.push_back(std::move(v));
  }
  return out;
}

std::unique_ptr<VectorIndex> make_index(IndexKind kind, std::size_t dim) {
  switch (kind) {
    case IndexKind::kFlat: return std::make_unique<FlatIndex>(dim);
    case IndexKind::kIvf: return std::make_unique<IvfIndex>(dim);
    case IndexKind::kHnsw: return std::make_unique<HnswIndex>(dim);
    case IndexKind::kSq8: return std::make_unique<Sq8Index>(dim);
    case IndexKind::kIvfPq: return std::make_unique<IvfPqIndex>(dim);
  }
  return nullptr;
}

// --- parameterized across index kinds -----------------------------------------

class AnyIndex : public ::testing::TestWithParam<IndexKind> {};

TEST_P(AnyIndex, SelfQueryReturnsSelfFirst) {
  constexpr std::size_t kDim = 32;
  const auto data = random_unit_vectors(300, kDim, 1);
  auto idx = make_index(GetParam(), kDim);
  for (const auto& v : data) idx->add(v);
  idx->build();
  for (std::size_t probe : {std::size_t{0}, std::size_t{137}, data.size() - 1}) {
    const auto results = idx->search(data[probe], 1);
    ASSERT_FALSE(results.empty());
    EXPECT_EQ(results[0].row, probe);
    EXPECT_NEAR(results[0].score, 1.0f, 2e-2f);
  }
}

TEST_P(AnyIndex, RecallAgainstExactSearch) {
  constexpr std::size_t kDim = 32;
  constexpr std::size_t kK = 10;
  const auto data = random_unit_vectors(1000, kDim, 2);
  const auto queries = random_unit_vectors(40, kDim, 3);
  auto idx = make_index(GetParam(), kDim);
  for (const auto& v : data) idx->add(v);
  idx->build();

  double recall_sum = 0.0;
  for (const auto& q : queries) {
    const auto got = idx->search(q, kK);
    const auto want = exact_search(data, q, kK);
    recall_sum += recall_at_k(got, want);
  }
  const double recall = recall_sum / static_cast<double>(queries.size());
  // Flat is exact (modulo fp16); approximate indexes must stay useful.
  if (GetParam() == IndexKind::kFlat) {
    EXPECT_GT(recall, 0.99);
  } else {
    EXPECT_GT(recall, 0.55);
  }
}

TEST_P(AnyIndex, KLargerThanSizeReturnsAll) {
  constexpr std::size_t kDim = 8;
  const auto data = random_unit_vectors(5, kDim, 4);
  auto idx = make_index(GetParam(), kDim);
  for (const auto& v : data) idx->add(v);
  idx->build();
  const auto results = idx->search(data[0], 50);
  EXPECT_EQ(results.size(), 5u);
}

TEST_P(AnyIndex, ScoresSortedDescending) {
  constexpr std::size_t kDim = 16;
  const auto data = random_unit_vectors(200, kDim, 5);
  auto idx = make_index(GetParam(), kDim);
  for (const auto& v : data) idx->add(v);
  idx->build();
  const auto results = idx->search(data[7], 20);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].score, results[i].score);
  }
}

TEST_P(AnyIndex, DimMismatchRejected) {
  auto idx = make_index(GetParam(), 16);
  EXPECT_THROW(idx->add(embed::Vector(8, 0.0f)), std::invalid_argument);
}

TEST_P(AnyIndex, SingleElementIndex) {
  auto idx = make_index(GetParam(), 4);
  embed::Vector v{1.0f, 0.0f, 0.0f, 0.0f};
  idx->add(v);
  idx->build();
  const auto results = idx->search(v, 3);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].row, 0u);
}

TEST_P(AnyIndex, AddBatchBitIdenticalToSequentialAdds) {
  constexpr std::size_t kDim = 16;
  const auto vecs = random_unit_vectors(64, kDim, 99);

  auto seq = make_index(GetParam(), kDim);
  for (const auto& v : vecs) seq->add(v);
  seq->build();

  auto batch = make_index(GetParam(), kDim);
  batch->add_batch(vecs);
  batch->build();

  ASSERT_EQ(batch->size(), seq->size());
  const auto queries = random_unit_vectors(24, kDim, 7);
  for (const auto& q : queries) {
    const auto a = seq->search(q, 8);
    const auto b = batch->search(q, 8);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].row, b[i].row);
      EXPECT_EQ(a[i].score, b[i].score);  // bit equality, not tolerance
    }
  }
}

TEST(AddBatch, SaveBlobsMatchSequentialForAllKinds) {
  // Stronger than search identity: the serialized state (HNSW graph
  // edges, IVF lists, flat rows) must be byte-identical.
  constexpr std::size_t kDim = 16;
  const auto vecs = random_unit_vectors(48, kDim, 11);

  FlatIndex flat_seq(kDim), flat_batch(kDim);
  IvfIndex ivf_seq(kDim), ivf_batch(kDim);
  HnswIndex hnsw_seq(kDim), hnsw_batch(kDim);
  Sq8Index sq8_seq(kDim), sq8_batch(kDim);
  IvfPqIndex pq_seq(kDim), pq_batch(kDim);
  for (const auto& v : vecs) {
    flat_seq.add(v);
    ivf_seq.add(v);
    hnsw_seq.add(v);
    sq8_seq.add(v);
    pq_seq.add(v);
  }
  flat_batch.add_batch(vecs);
  ivf_batch.add_batch(vecs);
  hnsw_batch.add_batch(vecs);
  sq8_batch.add_batch(vecs);
  pq_batch.add_batch(vecs);
  ivf_seq.build();
  ivf_batch.build();
  sq8_seq.build();
  sq8_batch.build();
  pq_seq.build();
  pq_batch.build();

  EXPECT_EQ(flat_seq.save(), flat_batch.save());
  EXPECT_EQ(ivf_seq.save(), ivf_batch.save());
  EXPECT_EQ(hnsw_seq.save(), hnsw_batch.save());
  EXPECT_EQ(sq8_seq.save(), sq8_batch.save());
  EXPECT_EQ(pq_seq.save(), pq_batch.save());
}

TEST_P(AnyIndex, AddBatchEmptyAndIncremental) {
  constexpr std::size_t kDim = 8;
  auto idx = make_index(GetParam(), kDim);
  idx->add_batch({});  // no-op
  EXPECT_EQ(idx->size(), 0u);
  const auto vecs = random_unit_vectors(10, kDim, 3);
  // Batch after singles after batch: rows keep insertion order.
  idx->add_batch({vecs[0], vecs[1]});
  idx->add(vecs[2]);
  idx->add_batch({vecs[3], vecs[4]});
  EXPECT_EQ(idx->size(), 5u);
}

INSTANTIATE_TEST_SUITE_P(Kinds, AnyIndex,
                         ::testing::Values(IndexKind::kFlat, IndexKind::kIvf,
                                           IndexKind::kHnsw, IndexKind::kSq8,
                                           IndexKind::kIvfPq),
                         [](const auto& info) {
                           return std::string(index_kind_name(info.param));
                         });

// --- flat specifics ---------------------------------------------------------------

TEST(FlatIndex, SaveLoadRoundTrip) {
  constexpr std::size_t kDim = 24;
  const auto data = random_unit_vectors(64, kDim, 6);
  FlatIndex idx(kDim);
  for (const auto& v : data) idx.add(v);
  const FlatIndex loaded = FlatIndex::load(idx.save());
  EXPECT_EQ(loaded.size(), idx.size());
  const auto q = random_unit_vectors(1, kDim, 7)[0];
  const auto a = idx.search(q, 5);
  const auto b = loaded.search(q, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].row, b[i].row);
    EXPECT_FLOAT_EQ(a[i].score, b[i].score);
  }
}

TEST(FlatIndex, LoadRejectsGarbage) {
  EXPECT_THROW(FlatIndex::load("nonsense"), std::runtime_error);
  EXPECT_THROW(FlatIndex::load("flatidx1\n8 100\nshort"), std::runtime_error);
}

TEST(FlatIndex, EmptySearch) {
  FlatIndex idx(8);
  EXPECT_TRUE(idx.search(embed::Vector(8, 0.1f), 5).empty());
}

TEST(FlatIndex, Fp16AtRestRoundTrip) {
  FlatIndex idx(4);
  const embed::Vector v{0.1f, -0.2f, 0.3f, -0.4f};
  idx.add(v);
  const embed::Vector back = idx.vector(0);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(back[i], v[i], 1e-3f);
}

// --- IVF specifics -----------------------------------------------------------------

TEST(IvfIndex, SearchBeforeBuildThrows) {
  IvfIndex idx(8);
  idx.add(embed::Vector(8, 0.5f));
  EXPECT_THROW(idx.search(embed::Vector(8, 0.5f), 1), std::logic_error);
}

TEST(IvfIndex, NprobeImprovesRecall) {
  constexpr std::size_t kDim = 24;
  const auto data = random_unit_vectors(2000, kDim, 8);
  const auto queries = random_unit_vectors(30, kDim, 9);
  IvfConfig cfg;
  cfg.nlist = 64;
  IvfIndex idx(kDim, cfg);
  for (const auto& v : data) idx.add(v);
  idx.build();

  const auto mean_recall = [&](std::size_t nprobe) {
    idx.set_nprobe(nprobe);
    double sum = 0.0;
    for (const auto& q : queries) {
      sum += recall_at_k(idx.search(q, 10), exact_search(data, q, 10));
    }
    return sum / static_cast<double>(queries.size());
  };
  const double r1 = mean_recall(1);
  const double r16 = mean_recall(16);
  const double r64 = mean_recall(64);
  EXPECT_GE(r16, r1);
  EXPECT_GT(r64, 0.99);  // probing every cell == exact
}

TEST(IvfIndex, BuildOnEmptyIsSafe) {
  IvfIndex idx(8);
  idx.build();
  EXPECT_TRUE(idx.search(embed::Vector(8, 0.1f), 3).empty());
}

TEST(IvfIndex, FewerPointsThanCells) {
  IvfConfig cfg;
  cfg.nlist = 128;
  IvfIndex idx(8, cfg);
  const auto data = random_unit_vectors(10, 8, 10);
  for (const auto& v : data) idx.add(v);
  idx.build();
  EXPECT_LE(idx.nlist(), 10u);
  idx.set_nprobe(idx.nlist());
  EXPECT_EQ(idx.search(data[3], 1)[0].row, 3u);
}

// --- HNSW specifics ------------------------------------------------------------------

TEST(HnswIndex, EfSearchImprovesRecall) {
  constexpr std::size_t kDim = 24;
  const auto data = random_unit_vectors(2000, kDim, 11);
  const auto queries = random_unit_vectors(30, kDim, 12);
  HnswConfig cfg;
  cfg.ef_construction = 64;
  HnswIndex idx(kDim, cfg);
  for (const auto& v : data) idx.add(v);

  const auto mean_recall = [&](std::size_t ef) {
    idx.set_ef_search(ef);
    double sum = 0.0;
    for (const auto& q : queries) {
      sum += recall_at_k(idx.search(q, 10), exact_search(data, q, 10));
    }
    return sum / static_cast<double>(queries.size());
  };
  const double r_low = mean_recall(10);
  const double r_high = mean_recall(200);
  EXPECT_GE(r_high + 1e-9, r_low);
  EXPECT_GT(r_high, 0.85);
}

TEST(HnswIndex, DeterministicConstruction) {
  constexpr std::size_t kDim = 16;
  const auto data = random_unit_vectors(300, kDim, 13);
  HnswIndex a(kDim);
  HnswIndex b(kDim);
  for (const auto& v : data) {
    a.add(v);
    b.add(v);
  }
  const auto q = random_unit_vectors(1, kDim, 14)[0];
  const auto ra = a.search(q, 10);
  const auto rb = b.search(q, 10);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) EXPECT_EQ(ra[i].row, rb[i].row);
}

// --- recall helpers -----------------------------------------------------------------

TEST(RecallAtK, Basics) {
  const std::vector<SearchResult> want{{1, 0.9f}, {2, 0.8f}, {3, 0.7f}};
  const std::vector<SearchResult> got{{1, 0.9f}, {9, 0.5f}, {3, 0.7f}};
  EXPECT_NEAR(recall_at_k(got, want), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(recall_at_k({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(recall_at_k({}, want), 0.0);
}

// --- vector store ---------------------------------------------------------------------

TEST(VectorStore, QueryReturnsPayloads) {
  const embed::HashedNGramEmbedder emb;
  VectorStore store(emb, IndexKind::kFlat);
  store.add("c1", "TP53 activates apoptosis following irradiation.");
  store.add("c2", "Samples were processed within thirty minutes.");
  store.add("c3", "Cisplatin radiosensitizes HeLa cells strongly.");
  store.build();
  const auto hits = store.query("what activates apoptosis?", 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, "c1");
  EXPECT_NE(hits[0].text.find("apoptosis"), std::string::npos);
}

TEST(VectorStore, QueryBeforeBuildThrows) {
  const embed::HashedNGramEmbedder emb;
  VectorStore store(emb);
  store.add("c1", "text");
  EXPECT_THROW(store.query("q", 1), std::logic_error);
}

TEST(VectorStore, AddAfterBuildRequiresRebuild) {
  const embed::HashedNGramEmbedder emb;
  VectorStore store(emb);
  store.add("c1", "alpha");
  store.build();
  store.add("c2", "beta");
  EXPECT_THROW(store.query("alpha", 1), std::logic_error);
  store.build();
  EXPECT_EQ(store.query("alpha", 1).size(), 1u);
}

TEST(VectorStore, EmbeddingBytesMatchFp16Footprint) {
  const embed::HashedNGramEmbedder emb;
  VectorStore store(emb);
  store.add("a", "one");
  store.add("b", "two");
  EXPECT_EQ(store.embedding_bytes(), 2u * emb.dim() * 2u);
}

TEST(VectorStore, AddBatchMatchesSequentialAtEveryThreadCount) {
  const embed::HashedNGramEmbedder emb;
  std::vector<std::string> ids, texts;
  for (int i = 0; i < 40; ++i) {
    ids.push_back("c" + std::to_string(i));
    texts.push_back("chunk " + std::to_string(i) +
                    " about radiation dose fractionation schedule " +
                    std::to_string(i % 5));
  }

  VectorStore seq(emb, IndexKind::kFlat);
  for (std::size_t i = 0; i < ids.size(); ++i) seq.add(ids[i], texts[i]);
  seq.build();
  const auto want = seq.query("radiation dose schedule 3", 10);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    VectorStore store(emb, IndexKind::kFlat);
    parallel::ThreadPool pool(threads);
    store.add_batch(ids, texts, pool);
    store.build();
    const auto got = store.query("radiation dose schedule 3", 10);
    ASSERT_EQ(got.size(), want.size()) << threads << " threads";
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id) << threads << " threads, hit " << i;
      EXPECT_EQ(got[i].score, want[i].score);  // bit equality
    }
  }
}

TEST(VectorStore, AddBatchSizeMismatchThrows) {
  const embed::HashedNGramEmbedder emb;
  VectorStore store(emb);
  EXPECT_THROW(store.add_batch({"a", "b"}, {"only one"}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mcqa::index
