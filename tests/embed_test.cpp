// Unit tests for the embedding substrate.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "embed/embedding_cache.hpp"
#include "embed/embedding_store.hpp"
#include "embed/hashed_embedder.hpp"
#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"

namespace mcqa::embed {
namespace {

TEST(VectorOps, DotAndNormalize) {
  Vector a{3.0f, 4.0f};
  normalize(a);
  EXPECT_NEAR(std::sqrt(dot(a, a)), 1.0f, 1e-6f);
  Vector zero{0.0f, 0.0f};
  normalize(zero);  // must not produce NaN
  EXPECT_EQ(zero[0], 0.0f);
}

TEST(VectorOps, L2Sq) {
  const Vector a{1.0f, 0.0f};
  const Vector b{0.0f, 1.0f};
  EXPECT_FLOAT_EQ(l2_sq(a, b), 2.0f);
  EXPECT_FLOAT_EQ(l2_sq(a, a), 0.0f);
}

TEST(HashedEmbedder, UnitNormOutput) {
  const HashedNGramEmbedder emb;
  const Vector v = emb.embed("ionizing radiation induces DNA damage");
  EXPECT_EQ(v.size(), emb.dim());
  EXPECT_NEAR(dot(v, v), 1.0f, 1e-5f);
}

TEST(HashedEmbedder, EmptyTextGivesZeroVector) {
  const HashedNGramEmbedder emb;
  const Vector v = emb.embed("");
  for (const float x : v) EXPECT_EQ(x, 0.0f);
}

TEST(HashedEmbedder, Deterministic) {
  const HashedNGramEmbedder emb;
  EXPECT_EQ(emb.embed("TP53 activates apoptosis"),
            emb.embed("TP53 activates apoptosis"));
}

TEST(HashedEmbedder, CaseAndPunctuationInvariant) {
  const HashedNGramEmbedder emb;
  const Vector a = emb.embed("TP53 activates apoptosis.");
  const Vector b = emb.embed("tp53 ACTIVATES apoptosis");
  EXPECT_NEAR(dot(a, b), 1.0f, 1e-5f);
}

TEST(HashedEmbedder, SimilarTextsScoreHigherThanDissimilar) {
  const HashedNGramEmbedder emb;
  const Vector q = emb.embed(
      "Which factor activates apoptosis after ionizing radiation?");
  const Vector relevant = emb.embed(
      "Our data indicate that TP53 activates apoptosis in irradiated cells.");
  const Vector unrelated = emb.embed(
      "Samples were processed within thirty minutes of collection.");
  EXPECT_GT(dot(q, relevant), dot(q, unrelated) + 0.1f);
}

TEST(HashedEmbedder, SeedChangesEmbedding) {
  HashedEmbedderConfig c1;
  HashedEmbedderConfig c2;
  c2.seed = c1.seed + 1;
  const HashedNGramEmbedder e1(c1);
  const HashedNGramEmbedder e2(c2);
  const Vector a = e1.embed("proton beams");
  const Vector b = e2.embed("proton beams");
  EXPECT_LT(std::fabs(dot(a, b)), 0.9f);
}

TEST(HashedEmbedder, DimensionConfigurable) {
  HashedEmbedderConfig cfg;
  cfg.dim = 64;
  const HashedNGramEmbedder emb(cfg);
  EXPECT_EQ(emb.embed("x y z").size(), 64u);
}

class EmbedderSimilarityOrder
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {};

TEST_P(EmbedderSimilarityOrder, ParaphraseBeatsRandomPair) {
  const HashedNGramEmbedder emb;
  const auto [text, paraphrase] = GetParam();
  const Vector a = emb.embed(text);
  const Vector b = emb.embed(paraphrase);
  const Vector noise = emb.embed(
      "statistical significance was assessed with two-sided tests");
  EXPECT_GT(dot(a, b), dot(a, noise));
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, EmbedderSimilarityOrder,
    ::testing::Values(
        std::make_tuple("cisplatin radiosensitizes HeLa cells",
                        "HeLa cells are radiosensitized by cisplatin"),
        std::make_tuple("the half-life of iodine-131 is 8 days",
                        "iodine-131 has a physical half-life of 8.02 days"),
        std::make_tuple("homologous recombination repairs strand breaks",
                        "strand breaks are repaired by homologous "
                        "recombination")));

TEST(EmbeddingStore, AddAndRetrieve) {
  const HashedNGramEmbedder emb;
  EmbeddingStore store(emb.dim());
  const Vector v = emb.embed("alpha particles");
  store.add("chunk_1", v);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.id(0), "chunk_1");
  const Vector back = store.vector(0);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(back[i], v[i], 2e-3f);
  }
}

TEST(EmbeddingStore, DimMismatchRejected) {
  EmbeddingStore store(16);
  EXPECT_THROW(store.add("x", Vector(8, 0.0f)), std::invalid_argument);
}

TEST(EmbeddingStore, OutOfRangeRowThrows) {
  EmbeddingStore store(4);
  EXPECT_THROW(store.vector(0), std::out_of_range);
}

TEST(EmbeddingStore, StorageBytesAreFp16) {
  EmbeddingStore store(256);
  store.add("a", Vector(256, 0.5f));
  store.add("b", Vector(256, 0.25f));
  EXPECT_EQ(store.storage_bytes(), 2u * 256u * 2u);
}

TEST(EmbeddingStore, SaveLoadRoundTrip) {
  const HashedNGramEmbedder emb;
  EmbeddingStore store(emb.dim());
  store.add("first", emb.embed("dose fractionation"));
  store.add("second", emb.embed("tumor hypoxia"));
  const EmbeddingStore loaded = EmbeddingStore::load(store.save());
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.id(1), "second");
  EXPECT_EQ(loaded.vector(0), store.vector(0));
}

TEST(EmbeddingStore, LoadRejectsCorruptBlobs) {
  EXPECT_THROW(EmbeddingStore::load("garbage"), std::runtime_error);
  EXPECT_THROW(EmbeddingStore::load("embst1\n4 2\nonly_one_id\n"),
               std::runtime_error);
  // Truncated payload.
  const HashedNGramEmbedder emb;
  EmbeddingStore store(emb.dim());
  store.add("x", emb.embed("text"));
  std::string blob = store.save();
  blob.resize(blob.size() - 10);
  EXPECT_THROW(EmbeddingStore::load(blob), std::runtime_error);
}

TEST(EmbeddingStore, QuantizationErrorBounded) {
  const HashedNGramEmbedder emb;
  const Vector v = emb.embed("relative biological effectiveness of carbon");
  // Unit-norm components are < 1; fp16 error there is < 2^-11.
  EXPECT_LT(EmbeddingStore::quantization_error(v), 0x1.0p-10f);
}

// --- streaming kernel vs string-materializing reference ------------------------

void expect_bit_identical(const Vector& a, const Vector& b,
                          const std::string& text) {
  ASSERT_EQ(a.size(), b.size()) << "text: " << text;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bit equality, not tolerance: the streaming path must hash and
    // accumulate the exact same features in the exact same order.
    EXPECT_EQ(a[i], b[i]) << "dim " << i << ", text: " << text;
  }
}

TEST(StreamingEmbed, MatchesReferenceOnEdgeCases) {
  const HashedNGramEmbedder emb;
  const std::vector<std::string> cases{
      "",                      // empty
      " \t\n ",                // whitespace only
      "!!! ... ---",           // punctuation only
      "a",                     // single char: no bigrams, no trigrams
      "ab",                    // sub-trigram word
      "a b c d",               // 1-char words: bigrams but no word trigrams
      "p53 cobalt-60 2.5",     // intra-word hyphen/dot survivors
      "-start end- a-b a.b.",  // boundary hyphens/dots dropped
      "  Mixed   CASE\ttext,\nwith (punct)!  ",
      "word",                  // exactly one word
      "xy zw",                 // two sub-trigram words -> one bigram
  };
  for (const auto& s : cases) {
    expect_bit_identical(emb.embed(s), emb.embed_reference(s), s);
  }
}

TEST(StreamingEmbed, PropertyMatchesReferenceOnRandomText) {
  const HashedNGramEmbedder emb;
  util::Rng rng(0x5eedf00dULL);
  // Random byte soup: words of random lengths (including 1 and 2 chars)
  // from a pool that exercises case folding, digits, intra-word and
  // stray punctuation, and multi-space runs.
  const std::string pool =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
      "-.,;:!?()[]\"'/ \t\n";
  for (int trial = 0; trial < 200; ++trial) {
    std::string s;
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 160));
    for (std::size_t i = 0; i < len; ++i) {
      s += pool[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
    }
    expect_bit_identical(emb.embed(s), emb.embed_reference(s), s);
  }
}

TEST(StreamingEmbed, MatchesReferenceAcrossFeatureConfigs) {
  // Each feature family on its own, and non-power-of-two dim (modulo
  // bucket path instead of the mask).
  for (const std::size_t dim : {256u, 100u}) {
    for (int mask = 1; mask < 8; ++mask) {
      HashedEmbedderConfig cfg;
      cfg.dim = dim;
      cfg.word_unigrams = (mask & 1) != 0;
      cfg.word_bigrams = (mask & 2) != 0;
      cfg.char_trigrams = (mask & 4) != 0;
      const HashedNGramEmbedder emb(cfg);
      const std::string s = "Dose-rate effects in p53 pathways, 2.5 Gy!";
      expect_bit_identical(emb.embed(s), emb.embed_reference(s), s);
    }
  }
}

// --- batch embedding -----------------------------------------------------------

TEST(EmbedBatch, BitIdenticalAcrossThreadCounts) {
  const HashedNGramEmbedder emb;
  std::vector<std::string> texts;
  for (int i = 0; i < 37; ++i) {
    texts.push_back("chunk " + std::to_string(i) +
                    " discusses stellar nucleosynthesis and dose-rate " +
                    std::to_string(i * 3) + ".");
  }
  std::vector<Vector> want;
  want.reserve(texts.size());
  for (const auto& t : texts) want.push_back(emb.embed(t));

  for (const std::size_t threads : {1u, 2u, 8u}) {
    parallel::ThreadPool pool(threads);
    const auto got = emb.embed_batch(texts, pool);
    ASSERT_EQ(got.size(), want.size()) << threads << " threads";
    for (std::size_t i = 0; i < want.size(); ++i) {
      expect_bit_identical(got[i], want[i], texts[i]);
    }
  }
}

TEST(EmbedBatch, EmptyBatch) {
  const HashedNGramEmbedder emb;
  parallel::ThreadPool pool(2);
  EXPECT_TRUE(emb.embed_batch(std::vector<std::string>{}, pool).empty());
}

// --- embedding cache -----------------------------------------------------------

TEST(CachingEmbedder, HitReturnsSameBitsAsBase) {
  const HashedNGramEmbedder base;
  const CachingEmbedder cache(base);
  const std::string s = "proton therapy bragg peak";
  const Vector direct = base.embed(s);
  expect_bit_identical(cache.embed(s), direct, s);  // miss, computes
  expect_bit_identical(cache.embed(s), direct, s);  // hit, returns copy
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(CachingEmbedder, DistinctTextsDistinctEntries) {
  const HashedNGramEmbedder base;
  const CachingEmbedder cache(base);
  cache.embed("alpha");
  cache.embed("beta");
  cache.embed("alpha");
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(CachingEmbedder, MaxEntriesBoundsInsertionNotCorrectness) {
  const HashedNGramEmbedder base;
  const CachingEmbedder cache(base, /*max_entries=*/1);
  cache.embed("first");   // inserted
  cache.embed("second");  // full: computed, not inserted
  expect_bit_identical(cache.embed("second"), base.embed("second"), "second");
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.hits, 0u);  // "second" never cached, so never a hit
  EXPECT_EQ(stats.misses, 3u);
}

TEST(CachingEmbedder, ClearResetsEverything) {
  const HashedNGramEmbedder base;
  CachingEmbedder cache(base);
  cache.embed("x");
  cache.embed("x");
  cache.clear();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.0);
}

TEST(CachingEmbedder, ConcurrentMixedWorkloadStaysDeterministic) {
  const HashedNGramEmbedder base;
  const CachingEmbedder cache(base);
  std::vector<std::string> texts;
  for (int i = 0; i < 64; ++i) {
    texts.push_back("repeated text " + std::to_string(i % 8));
  }
  parallel::ThreadPool pool(8);
  const auto got = cache.embed_batch(texts, pool);
  for (std::size_t i = 0; i < texts.size(); ++i) {
    expect_bit_identical(got[i], base.embed(texts[i]), texts[i]);
  }
  // 8 distinct texts -> at most 8 entries regardless of interleaving.
  EXPECT_LE(cache.stats().entries, 8u);
}

}  // namespace
}  // namespace mcqa::embed
