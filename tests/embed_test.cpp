// Unit tests for the embedding substrate.

#include <gtest/gtest.h>

#include <cmath>

#include "embed/embedding_store.hpp"
#include "embed/hashed_embedder.hpp"

namespace mcqa::embed {
namespace {

TEST(VectorOps, DotAndNormalize) {
  Vector a{3.0f, 4.0f};
  normalize(a);
  EXPECT_NEAR(std::sqrt(dot(a, a)), 1.0f, 1e-6f);
  Vector zero{0.0f, 0.0f};
  normalize(zero);  // must not produce NaN
  EXPECT_EQ(zero[0], 0.0f);
}

TEST(VectorOps, L2Sq) {
  const Vector a{1.0f, 0.0f};
  const Vector b{0.0f, 1.0f};
  EXPECT_FLOAT_EQ(l2_sq(a, b), 2.0f);
  EXPECT_FLOAT_EQ(l2_sq(a, a), 0.0f);
}

TEST(HashedEmbedder, UnitNormOutput) {
  const HashedNGramEmbedder emb;
  const Vector v = emb.embed("ionizing radiation induces DNA damage");
  EXPECT_EQ(v.size(), emb.dim());
  EXPECT_NEAR(dot(v, v), 1.0f, 1e-5f);
}

TEST(HashedEmbedder, EmptyTextGivesZeroVector) {
  const HashedNGramEmbedder emb;
  const Vector v = emb.embed("");
  for (const float x : v) EXPECT_EQ(x, 0.0f);
}

TEST(HashedEmbedder, Deterministic) {
  const HashedNGramEmbedder emb;
  EXPECT_EQ(emb.embed("TP53 activates apoptosis"),
            emb.embed("TP53 activates apoptosis"));
}

TEST(HashedEmbedder, CaseAndPunctuationInvariant) {
  const HashedNGramEmbedder emb;
  const Vector a = emb.embed("TP53 activates apoptosis.");
  const Vector b = emb.embed("tp53 ACTIVATES apoptosis");
  EXPECT_NEAR(dot(a, b), 1.0f, 1e-5f);
}

TEST(HashedEmbedder, SimilarTextsScoreHigherThanDissimilar) {
  const HashedNGramEmbedder emb;
  const Vector q = emb.embed(
      "Which factor activates apoptosis after ionizing radiation?");
  const Vector relevant = emb.embed(
      "Our data indicate that TP53 activates apoptosis in irradiated cells.");
  const Vector unrelated = emb.embed(
      "Samples were processed within thirty minutes of collection.");
  EXPECT_GT(dot(q, relevant), dot(q, unrelated) + 0.1f);
}

TEST(HashedEmbedder, SeedChangesEmbedding) {
  HashedEmbedderConfig c1;
  HashedEmbedderConfig c2;
  c2.seed = c1.seed + 1;
  const HashedNGramEmbedder e1(c1);
  const HashedNGramEmbedder e2(c2);
  const Vector a = e1.embed("proton beams");
  const Vector b = e2.embed("proton beams");
  EXPECT_LT(std::fabs(dot(a, b)), 0.9f);
}

TEST(HashedEmbedder, DimensionConfigurable) {
  HashedEmbedderConfig cfg;
  cfg.dim = 64;
  const HashedNGramEmbedder emb(cfg);
  EXPECT_EQ(emb.embed("x y z").size(), 64u);
}

class EmbedderSimilarityOrder
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {};

TEST_P(EmbedderSimilarityOrder, ParaphraseBeatsRandomPair) {
  const HashedNGramEmbedder emb;
  const auto [text, paraphrase] = GetParam();
  const Vector a = emb.embed(text);
  const Vector b = emb.embed(paraphrase);
  const Vector noise = emb.embed(
      "statistical significance was assessed with two-sided tests");
  EXPECT_GT(dot(a, b), dot(a, noise));
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, EmbedderSimilarityOrder,
    ::testing::Values(
        std::make_tuple("cisplatin radiosensitizes HeLa cells",
                        "HeLa cells are radiosensitized by cisplatin"),
        std::make_tuple("the half-life of iodine-131 is 8 days",
                        "iodine-131 has a physical half-life of 8.02 days"),
        std::make_tuple("homologous recombination repairs strand breaks",
                        "strand breaks are repaired by homologous "
                        "recombination")));

TEST(EmbeddingStore, AddAndRetrieve) {
  const HashedNGramEmbedder emb;
  EmbeddingStore store(emb.dim());
  const Vector v = emb.embed("alpha particles");
  store.add("chunk_1", v);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.id(0), "chunk_1");
  const Vector back = store.vector(0);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(back[i], v[i], 2e-3f);
  }
}

TEST(EmbeddingStore, DimMismatchRejected) {
  EmbeddingStore store(16);
  EXPECT_THROW(store.add("x", Vector(8, 0.0f)), std::invalid_argument);
}

TEST(EmbeddingStore, OutOfRangeRowThrows) {
  EmbeddingStore store(4);
  EXPECT_THROW(store.vector(0), std::out_of_range);
}

TEST(EmbeddingStore, StorageBytesAreFp16) {
  EmbeddingStore store(256);
  store.add("a", Vector(256, 0.5f));
  store.add("b", Vector(256, 0.25f));
  EXPECT_EQ(store.storage_bytes(), 2u * 256u * 2u);
}

TEST(EmbeddingStore, SaveLoadRoundTrip) {
  const HashedNGramEmbedder emb;
  EmbeddingStore store(emb.dim());
  store.add("first", emb.embed("dose fractionation"));
  store.add("second", emb.embed("tumor hypoxia"));
  const EmbeddingStore loaded = EmbeddingStore::load(store.save());
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.id(1), "second");
  EXPECT_EQ(loaded.vector(0), store.vector(0));
}

TEST(EmbeddingStore, LoadRejectsCorruptBlobs) {
  EXPECT_THROW(EmbeddingStore::load("garbage"), std::runtime_error);
  EXPECT_THROW(EmbeddingStore::load("embst1\n4 2\nonly_one_id\n"),
               std::runtime_error);
  // Truncated payload.
  const HashedNGramEmbedder emb;
  EmbeddingStore store(emb.dim());
  store.add("x", emb.embed("text"));
  std::string blob = store.save();
  blob.resize(blob.size() - 10);
  EXPECT_THROW(EmbeddingStore::load(blob), std::runtime_error);
}

TEST(EmbeddingStore, QuantizationErrorBounded) {
  const HashedNGramEmbedder emb;
  const Vector v = emb.embed("relative biological effectiveness of carbon");
  // Unit-norm components are < 1; fp16 error there is < 2^-11.
  EXPECT_LT(EmbeddingStore::quantization_error(v), 0x1.0p-10f);
}

}  // namespace
}  // namespace mcqa::embed
