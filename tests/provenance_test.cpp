// Tests for the provenance index (question -> chunk -> document -> raw
// bytes lineage).

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/provenance.hpp"

namespace mcqa::core {
namespace {

const PipelineContext& ctx() {
  static const PipelineContext context(PipelineConfig::paper_scale(0.006));
  return context;
}

const ProvenanceIndex& index() {
  static const ProvenanceIndex idx(ctx());
  return idx;
}

TEST(Provenance, EveryBenchmarkRecordHasFullLineage) {
  for (const auto& record : ctx().benchmark()) {
    const auto lineage = index().lookup(record.record_id);
    ASSERT_TRUE(lineage.has_value()) << record.record_id;
    EXPECT_EQ(lineage->record, &record);
    ASSERT_NE(lineage->chunk, nullptr) << record.record_id;
    EXPECT_EQ(lineage->chunk->chunk_id, record.chunk_id);
    ASSERT_NE(lineage->document, nullptr);
    EXPECT_EQ(lineage->document->doc_id, lineage->chunk->doc_id);
    ASSERT_NE(lineage->raw, nullptr);
    EXPECT_EQ(lineage->raw->doc_id, lineage->chunk->doc_id);
  }
}

TEST(Provenance, ProbedFactIsAmongChunkFacts) {
  for (const auto& record : ctx().benchmark()) {
    const auto lineage = index().lookup(record.record_id);
    ASSERT_TRUE(lineage.has_value());
    EXPECT_NE(std::find(lineage->chunk_facts.begin(),
                        lineage->chunk_facts.end(), record.fact),
              lineage->chunk_facts.end())
        << record.record_id;
  }
}

TEST(Provenance, UnknownRecordReturnsNullopt) {
  EXPECT_FALSE(index().lookup("q_nonexistent_99").has_value());
}

TEST(Provenance, QuestionsProbingFactAreConsistent) {
  for (const auto& record : ctx().benchmark()) {
    const auto probing = index().questions_probing(record.fact);
    EXPECT_NE(std::find(probing.begin(), probing.end(), &record),
              probing.end());
    for (const auto* q : probing) EXPECT_EQ(q->fact, record.fact);
  }
}

TEST(Provenance, SiblingsShareDocumentAndExcludeSelf) {
  for (const auto& record : ctx().benchmark()) {
    const auto lineage = index().lookup(record.record_id);
    ASSERT_TRUE(lineage.has_value());
    for (const auto* sibling : lineage->sibling_questions) {
      EXPECT_NE(sibling, lineage->record);
      const auto sib_lineage = index().lookup(sibling->record_id);
      ASSERT_TRUE(sib_lineage.has_value());
      EXPECT_EQ(sib_lineage->chunk->doc_id, lineage->chunk->doc_id);
    }
  }
}

TEST(Provenance, QuestionsFromDocumentMatchSiblingCounts) {
  const auto& first = ctx().benchmark().front();
  const auto lineage = index().lookup(first.record_id);
  ASSERT_TRUE(lineage.has_value());
  const auto from_doc =
      index().questions_from_document(lineage->chunk->doc_id);
  EXPECT_EQ(from_doc.size(), lineage->sibling_questions.size() + 1);
}

TEST(Provenance, SizeMatchesBenchmark) {
  EXPECT_EQ(index().size(), ctx().benchmark().size());
}

}  // namespace
}  // namespace mcqa::core
