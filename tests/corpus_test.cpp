// Unit tests for corpus synthesis: knowledge base, realization, paper
// generation, SPDF rendering, corpus builder, fact matcher.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "corpus/corpus_builder.hpp"
#include "corpus/fact_matcher.hpp"
#include "corpus/knowledge_base.hpp"
#include "corpus/paper_generator.hpp"
#include "corpus/realization.hpp"
#include "corpus/spdf.hpp"
#include "corpus/term_banks.hpp"

namespace mcqa::corpus {
namespace {

KbConfig small_kb_config() {
  KbConfig cfg;
  cfg.facts_per_topic = 12;
  cfg.seed = 5;
  return cfg;
}

const KnowledgeBase& test_kb() {
  static const KnowledgeBase kb = KnowledgeBase::generate(small_kb_config());
  return kb;
}

// --- term banks ---------------------------------------------------------------

TEST(TermBanks, AllKindsNonEmpty) {
  for (int k = 0; k < kEntityKindCount; ++k) {
    EXPECT_FALSE(term_bank(static_cast<EntityKind>(k)).empty())
        << entity_kind_name(static_cast<EntityKind>(k));
  }
  EXPECT_FALSE(topic_bank().empty());
  EXPECT_FALSE(discourse_bank().empty());
}

TEST(TermBanks, HalfLivesAlignedWithIsotopes) {
  EXPECT_EQ(isotope_half_life_days().size(),
            term_bank(EntityKind::kIsotope).size());
  for (const double hl : isotope_half_life_days()) EXPECT_GT(hl, 0.0);
}

TEST(TermBanks, NamesUniqueWithinKind) {
  for (int k = 0; k < kEntityKindCount; ++k) {
    const auto& bank = term_bank(static_cast<EntityKind>(k));
    std::set<std::string_view> unique(bank.begin(), bank.end());
    EXPECT_EQ(unique.size(), bank.size());
  }
}

// --- knowledge base -------------------------------------------------------------

TEST(KnowledgeBase, GenerationDeterministic) {
  const KnowledgeBase a = KnowledgeBase::generate(small_kb_config());
  const KnowledgeBase b = KnowledgeBase::generate(small_kb_config());
  ASSERT_EQ(a.facts().size(), b.facts().size());
  for (std::size_t i = 0; i < a.facts().size(); ++i) {
    EXPECT_EQ(a.facts()[i].subject, b.facts()[i].subject);
    EXPECT_EQ(a.facts()[i].relation, b.facts()[i].relation);
    EXPECT_EQ(a.facts()[i].object, b.facts()[i].object);
  }
}

TEST(KnowledgeBase, NoDuplicateRelations) {
  const auto& kb = test_kb();
  std::set<std::tuple<EntityId, int, EntityId>> seen;
  for (const auto& f : kb.facts()) {
    const auto key = std::make_tuple(
        f.subject, static_cast<int>(f.relation), f.object);
    EXPECT_TRUE(seen.insert(key).second) << "duplicate fact";
  }
}

TEST(KnowledgeBase, RelationHoldsMatchesFacts) {
  const auto& kb = test_kb();
  for (const auto& f : kb.facts()) {
    EXPECT_TRUE(kb.relation_holds(f.subject, f.relation, f.object));
  }
  // A relation not in the KB.
  EXPECT_FALSE(kb.relation_holds(0, RelationKind::kActivates, 0));
}

TEST(KnowledgeBase, FactsRespectRelationSignatures) {
  const auto& kb = test_kb();
  for (const auto& f : kb.facts()) {
    const EntityKind sk = kb.entity(f.subject).kind;
    switch (f.relation) {
      case RelationKind::kPhosphorylates:
        EXPECT_EQ(sk, EntityKind::kGene);
        EXPECT_EQ(kb.entity(f.object).kind, EntityKind::kGene);
        break;
      case RelationKind::kSensitizes:
      case RelationKind::kProtects:
        EXPECT_EQ(sk, EntityKind::kAgent);
        EXPECT_EQ(kb.entity(f.object).kind, EntityKind::kCellType);
        break;
      case RelationKind::kHalfLife:
        EXPECT_EQ(sk, EntityKind::kIsotope);
        EXPECT_TRUE(f.quantitative);
        EXPECT_GT(f.value, 0.0);
        break;
      case RelationKind::kHasQuantity:
        EXPECT_EQ(kb.entity(f.object).kind, EntityKind::kQuantity);
        EXPECT_TRUE(f.quantitative);
        break;
      default:
        break;
    }
  }
}

TEST(KnowledgeBase, TopicsPartitionFacts) {
  const auto& kb = test_kb();
  std::size_t total = 0;
  for (const auto& t : kb.topics()) total += t.facts.size();
  EXPECT_EQ(total, kb.facts().size());
}

TEST(KnowledgeBase, ImportanceInRange) {
  for (const auto& f : test_kb().facts()) {
    EXPECT_GE(f.importance, 0.0);
    EXPECT_LE(f.importance, 1.0);
  }
}

TEST(KnowledgeBase, FindEntityByName) {
  const auto& kb = test_kb();
  const auto id = kb.find_entity("TP53");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(kb.entity(*id).name, "TP53");
  EXPECT_FALSE(kb.find_entity("NOT-A-GENE").has_value());
}

TEST(KnowledgeBase, FactsMentioningIndexesBothSides) {
  const auto& kb = test_kb();
  for (const auto& f : kb.facts()) {
    const auto subj_facts = kb.facts_mentioning(f.subject);
    EXPECT_NE(std::find(subj_facts.begin(), subj_facts.end(), f.id),
              subj_facts.end());
  }
}

// --- realization -----------------------------------------------------------------

TEST(Realization, StatementVariantsDiffer) {
  const auto& kb = test_kb();
  const Fact& f = kb.facts().front();
  std::set<std::string> variants;
  for (int v = 0; v < statement_variant_count(f); ++v) {
    variants.insert(realize_statement(kb, f, v));
  }
  EXPECT_EQ(variants.size(),
            static_cast<std::size_t>(statement_variant_count(f)));
}

TEST(Realization, StatementMentionsEntities) {
  const auto& kb = test_kb();
  for (const auto& f : kb.facts()) {
    const std::string s = realize_statement(kb, f, 0);
    EXPECT_NE(s.find(kb.entity(f.subject).name), std::string::npos) << s;
  }
}

TEST(Realization, QuestionHasDistinctOptions) {
  const auto& kb = test_kb();
  util::Rng rng(3);
  for (const auto& f : kb.facts()) {
    util::Rng qrng = rng.fork(f.id);
    const QuestionRealization q = realize_question(kb, f, qrng);
    EXPECT_FALSE(q.stem.empty());
    EXPECT_FALSE(q.correct.empty());
    std::set<std::string> all(q.distractors.begin(), q.distractors.end());
    EXPECT_EQ(all.size(), q.distractors.size()) << "duplicate distractors";
    EXPECT_FALSE(all.contains(q.correct)) << "correct leaked into distractors";
  }
}

TEST(Realization, EntityDistractorsAreFalse) {
  const auto& kb = test_kb();
  util::Rng rng(17);
  int relational_checked = 0;
  for (const auto& f : kb.facts()) {
    if (f.quantitative) continue;
    util::Rng qrng = rng.fork(f.id);
    const QuestionRealization q = realize_question(kb, f, qrng);
    // Each distractor, substituted into the asked slot, must not be a
    // true relation.
    for (const auto& d : q.distractors) {
      const auto id = kb.find_entity(d);
      if (!id.has_value()) continue;
      const bool as_subject = kb.relation_holds(*id, f.relation, f.object);
      const bool as_object = kb.relation_holds(f.subject, f.relation, *id);
      EXPECT_FALSE(as_subject && as_object);
    }
    ++relational_checked;
  }
  EXPECT_GT(relational_checked, 0);
}

TEST(Realization, MathQuestionsFlagged) {
  const auto& kb = test_kb();
  util::Rng rng(23);
  bool saw_math = false;
  for (const auto& f : kb.facts()) {
    if (!f.math) continue;
    util::Rng qrng = rng.fork(f.id);
    const QuestionRealization q = realize_question(kb, f, qrng);
    EXPECT_TRUE(q.math);
    saw_math = true;
  }
  EXPECT_TRUE(saw_math) << "KB generated no math facts";
}

TEST(Realization, FormatQuantity) {
  EXPECT_EQ(format_quantity(2.50, "Gy"), "2.5 Gy");
  EXPECT_EQ(format_quantity(3.0, ""), "3");
  EXPECT_EQ(format_quantity(11.04, "days"), "11 days");
}

// --- paper generation ---------------------------------------------------------------

TEST(PaperGenerator, FactsAppearInText) {
  const auto& kb = test_kb();
  const PaperGenerator gen(kb, PaperGenConfig{});
  const PaperSpec spec = gen.generate(0, DocKind::kFullPaper, util::Rng(77));
  const FactMatcher matcher(kb);
  const auto found = matcher.match(spec.plain_text());
  const std::unordered_set<FactId> found_set(found.begin(), found.end());
  // Every fact the generator claims to have realized must be detectable
  // in the plain text.
  for (const FactId f : spec.facts) {
    EXPECT_TRUE(found_set.contains(f)) << "fact " << f << " not in text";
  }
}

TEST(PaperGenerator, FullPaperHasStandardSections) {
  const auto& kb = test_kb();
  const PaperGenerator gen(kb, PaperGenConfig{});
  const PaperSpec spec = gen.generate(1, DocKind::kFullPaper, util::Rng(78));
  std::vector<std::string> headings;
  for (const auto& s : spec.sections) headings.push_back(s.heading);
  EXPECT_NE(std::find(headings.begin(), headings.end(), "Abstract"),
            headings.end());
  EXPECT_NE(std::find(headings.begin(), headings.end(), "Results"),
            headings.end());
}

TEST(PaperGenerator, AbstractIsSingleSection) {
  const auto& kb = test_kb();
  const PaperGenerator gen(kb, PaperGenConfig{});
  const PaperSpec spec = gen.generate(2, DocKind::kAbstract, util::Rng(79));
  ASSERT_EQ(spec.sections.size(), 1u);
  EXPECT_EQ(spec.sections[0].heading, "Abstract");
  EXPECT_FALSE(spec.facts.empty());
}

TEST(PaperGenerator, DeterministicPerSeed) {
  const auto& kb = test_kb();
  const PaperGenerator gen(kb, PaperGenConfig{});
  const PaperSpec a = gen.generate(3, DocKind::kFullPaper, util::Rng(80));
  const PaperSpec b = gen.generate(3, DocKind::kFullPaper, util::Rng(80));
  EXPECT_EQ(a.plain_text(), b.plain_text());
  EXPECT_EQ(a.facts, b.facts);
}

TEST(PaperGenerator, SentenceFactAttribution) {
  const auto& kb = test_kb();
  const PaperGenerator gen(kb, PaperGenConfig{});
  const PaperSpec spec = gen.generate(4, DocKind::kFullPaper, util::Rng(81));
  const FactMatcher matcher(kb);
  for (const auto& section : spec.sections) {
    for (const auto& sentence : section.sentences) {
      for (const FactId f : sentence.facts) {
        EXPECT_TRUE(matcher.contains(sentence.text, f))
            << sentence.text << " should carry fact " << f;
      }
    }
  }
}

// --- SPDF -------------------------------------------------------------------------

TEST(Spdf, CleanRenderHasStructure) {
  const auto& kb = test_kb();
  const PaperGenerator gen(kb, PaperGenConfig{});
  const PaperSpec spec = gen.generate(5, DocKind::kFullPaper, util::Rng(82));
  const std::string bytes = write_spdf(spec, SpdfNoise::clean(), util::Rng(83));
  EXPECT_EQ(bytes.rfind("%SPDF-", 0), 0u);
  EXPECT_NE(bytes.find("%%DocId: " + spec.doc_id), std::string::npos);
  EXPECT_NE(bytes.find("%%BeginPage 1"), std::string::npos);
  EXPECT_NE(bytes.find("%%EOF"), std::string::npos);
  EXPECT_EQ(bytes.find("~HDR~"), std::string::npos);  // clean = no headers
}

TEST(Spdf, HardRenderInjectsArtifacts) {
  const auto& kb = test_kb();
  const PaperGenerator gen(kb, PaperGenConfig{});
  const PaperSpec spec = gen.generate(6, DocKind::kFullPaper, util::Rng(84));
  const std::string bytes = write_spdf(spec, SpdfNoise::hard(), util::Rng(85));
  EXPECT_NE(bytes.find("~HDR~"), std::string::npos);
}

TEST(Spdf, MarkdownRender) {
  const auto& kb = test_kb();
  const PaperGenerator gen(kb, PaperGenConfig{});
  const PaperSpec spec = gen.generate(7, DocKind::kFullPaper, util::Rng(86));
  const std::string md = write_markdown(spec);
  EXPECT_EQ(md.rfind("# ", 0), 0u);
  EXPECT_NE(md.find("## Abstract"), std::string::npos);
}

// --- corpus builder -----------------------------------------------------------------

TEST(CorpusBuilder, CountsScaleWithConfig) {
  CorpusConfig cfg;
  cfg.scale = 0.002;
  EXPECT_EQ(cfg.paper_count(), 28u);    // round(0.002 * 14115)
  EXPECT_EQ(cfg.abstract_count(), 17u);  // round(0.002 * 8433)
}

TEST(CorpusBuilder, DeterministicAcrossThreadCounts) {
  const auto& kb = test_kb();
  CorpusConfig cfg;
  cfg.scale = 0.001;
  cfg.seed = 999;
  const SyntheticCorpus a = build_corpus(kb, cfg, /*threads=*/1);
  const SyntheticCorpus b = build_corpus(kb, cfg, /*threads=*/4);
  ASSERT_EQ(a.documents.size(), b.documents.size());
  for (std::size_t i = 0; i < a.documents.size(); ++i) {
    EXPECT_EQ(a.documents[i].doc_id, b.documents[i].doc_id);
    EXPECT_EQ(a.documents[i].bytes, b.documents[i].bytes);
  }
}

TEST(CorpusBuilder, UniqueDocIdsAndSpecAlignment) {
  const auto& kb = test_kb();
  CorpusConfig cfg;
  cfg.scale = 0.001;
  const SyntheticCorpus corpus = build_corpus(kb, cfg);
  std::set<std::string> ids;
  for (std::size_t i = 0; i < corpus.documents.size(); ++i) {
    EXPECT_TRUE(ids.insert(corpus.documents[i].doc_id).second);
    EXPECT_EQ(corpus.documents[i].doc_id, corpus.specs[i].doc_id);
  }
  EXPECT_NE(corpus.spec_for(corpus.documents.front().doc_id), nullptr);
  EXPECT_EQ(corpus.spec_for("nonexistent"), nullptr);
}

TEST(CorpusBuilder, FormatMixIncludesAllThree) {
  const auto& kb = test_kb();
  CorpusConfig cfg;
  cfg.scale = 0.01;  // enough docs for the mix to show up
  cfg.markdown_fraction = 0.2;
  cfg.text_fraction = 0.2;
  const SyntheticCorpus corpus = build_corpus(kb, cfg);
  std::set<DocFormat> formats;
  for (const auto& d : corpus.documents) formats.insert(d.format);
  EXPECT_TRUE(formats.contains(DocFormat::kSpdf));
  EXPECT_TRUE(formats.contains(DocFormat::kMarkdown));
  EXPECT_TRUE(formats.contains(DocFormat::kPlainText));
}

// --- fact matcher ------------------------------------------------------------------

TEST(FactMatcher, DetectsRealizedStatement) {
  const auto& kb = test_kb();
  const FactMatcher matcher(kb);
  for (int variant = 0; variant < 3; ++variant) {
    const Fact& f = kb.facts()[kb.facts().size() / 2];
    const std::string text = realize_statement(kb, f, variant);
    EXPECT_TRUE(matcher.contains(text, f.id)) << text;
  }
}

TEST(FactMatcher, RejectsUnrelatedText) {
  const auto& kb = test_kb();
  const FactMatcher matcher(kb);
  EXPECT_TRUE(
      matcher.match("The weather in Chicago is windy today.").empty());
}

TEST(FactMatcher, RejectsCoMentionWithoutRelationCue) {
  const auto& kb = test_kb();
  const FactMatcher matcher(kb);
  // Find a relational fact and mention both entities without the verb.
  for (const auto& f : kb.facts()) {
    if (f.quantitative) continue;
    const std::string text = "We measured " + kb.entity(f.subject).name +
                             " and separately " + kb.entity(f.object).name +
                             " in this cohort.";
    EXPECT_FALSE(matcher.contains(text, f.id)) << text;
    break;
  }
}

TEST(FactMatcher, SurvivesCaseAndPunctuation) {
  const auto& kb = test_kb();
  const FactMatcher matcher(kb);
  const Fact& f = kb.facts().front();
  std::string text = realize_statement(kb, f, 0);
  for (auto& c : text) c = static_cast<char>(std::toupper(c));
  EXPECT_TRUE(matcher.contains(text, f.id));
}

TEST(FactMatcher, BrokenEntityNameNotDetected) {
  const auto& kb = test_kb();
  const FactMatcher matcher(kb);
  const Fact& f = kb.facts().front();
  std::string text = realize_statement(kb, f, 0);
  // Corrupt the subject name (ligature-style damage).
  const std::string& subj = kb.entity(f.subject).name;
  const auto pos = text.find(subj);
  ASSERT_NE(pos, std::string::npos);
  text.erase(pos, 2);
  EXPECT_FALSE(matcher.contains(text, f.id));
}

}  // namespace
}  // namespace mcqa::corpus
