// Unit tests for the Astro exam synthesis and the math classifier.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "exam/astro_exam.hpp"

namespace mcqa::exam {
namespace {

const corpus::KnowledgeBase& test_kb() {
  static const corpus::KnowledgeBase kb = corpus::KnowledgeBase::generate(
      corpus::KbConfig{.facts_per_topic = 20, .seed = 61, .math_fraction = 0.45});
  return kb;
}

std::unordered_set<corpus::FactId> half_covered() {
  std::unordered_set<corpus::FactId> covered;
  for (const auto& f : test_kb().facts()) {
    if (f.id % 2 == 0) covered.insert(f.id);
  }
  return covered;
}

const Exam& test_exam() {
  static const Exam exam = [] {
    const AstroExamBuilder builder(test_kb());
    return builder.build(half_covered());
  }();
  return exam;
}

TEST(AstroExam, PaperCounts) {
  const Exam& exam = test_exam();
  EXPECT_EQ(exam.questions.size(), 337u);
  std::size_t multimodal = 0;
  for (const auto& q : exam.questions) multimodal += q.multimodal ? 1 : 0;
  EXPECT_EQ(multimodal, 2u);
  EXPECT_EQ(exam.usable().size(), 335u);
}

TEST(AstroExam, MathFractionNearTarget) {
  const Exam& exam = test_exam();
  std::size_t math = 0;
  std::size_t usable = 0;
  for (const auto& q : exam.questions) {
    if (q.multimodal) continue;
    ++usable;
    math += q.math ? 1 : 0;
  }
  const double fraction = static_cast<double>(math) / usable;
  EXPECT_NEAR(fraction, 0.436, 0.05);
  // Paper: 189 of 335 are no-math.
  EXPECT_NEAR(static_cast<double>(exam.no_math_truth().size()), 189.0, 20.0);
}

TEST(AstroExam, FiveOptionsPerQuestion) {
  for (const auto& q : test_exam().questions) {
    EXPECT_GE(q.record.options.size(), 4u);
    EXPECT_LE(q.record.options.size(), 5u);
    ASSERT_GE(q.record.correct_index, 0);
    ASSERT_LT(q.record.correct_index,
              static_cast<int>(q.record.options.size()));
    EXPECT_EQ(q.record.answer,
              q.record.options[static_cast<std::size_t>(
                  q.record.correct_index)]);
  }
}

TEST(AstroExam, RecordsFlaggedAsExamItems) {
  for (const auto& q : test_exam().questions) {
    EXPECT_TRUE(q.record.exam_item);
    EXPECT_GT(q.record.ambiguity, 0.0);
    EXPECT_LT(q.record.ambiguity, 0.1);  // expert exams are mostly clean
    EXPECT_EQ(q.record.path, "exam/astro_2023_study_guide.pdf");
  }
}

TEST(AstroExam, UniqueRecordIds) {
  std::set<std::string> ids;
  for (const auto& q : test_exam().questions) {
    EXPECT_TRUE(ids.insert(q.record.record_id).second);
  }
}

TEST(AstroExam, MathFlagsConsistent) {
  for (const auto& q : test_exam().questions) {
    EXPECT_EQ(q.math, q.record.math);
  }
}

TEST(AstroExam, MultimodalStemsMentionVisuals) {
  for (const auto& q : test_exam().questions) {
    if (!q.multimodal) continue;
    EXPECT_NE(q.record.stem.find("figure"), std::string::npos);
  }
}

TEST(AstroExam, DeterministicAcrossBuilds) {
  const AstroExamBuilder builder(test_kb());
  const Exam a = builder.build(half_covered());
  const Exam b = builder.build(half_covered());
  ASSERT_EQ(a.questions.size(), b.questions.size());
  for (std::size_t i = 0; i < a.questions.size(); ++i) {
    EXPECT_EQ(a.questions[i].record.question, b.questions[i].record.question);
    EXPECT_EQ(a.questions[i].record.correct_index,
              b.questions[i].record.correct_index);
  }
}

TEST(AstroExam, MixesCoveredAndUncoveredFacts) {
  const auto covered = half_covered();
  std::size_t covered_count = 0;
  std::size_t uncovered_count = 0;
  for (const auto& q : test_exam().questions) {
    if (q.math || q.multimodal) continue;
    (covered.contains(q.record.fact) ? covered_count : uncovered_count)++;
  }
  EXPECT_GT(covered_count, 0u);
  EXPECT_GT(uncovered_count, 0u);
  // covered_fraction default is 0.9: covered should dominate.
  EXPECT_GT(covered_count, uncovered_count);
}

TEST(MathClassifier, PerfectAccuracyMatchesTruth) {
  const MathClassifier perfect(1.0);
  const Exam& exam = test_exam();
  EXPECT_EQ(perfect.no_math_subset(exam).size(), exam.no_math_truth().size());
}

TEST(MathClassifier, NoisyClassifierApproximatesTruth) {
  const MathClassifier noisy(0.95);
  const Exam& exam = test_exam();
  const auto subset = noisy.no_math_subset(exam);
  const auto truth = exam.no_math_truth();
  const double diff = std::fabs(static_cast<double>(subset.size()) -
                                static_cast<double>(truth.size()));
  EXPECT_LT(diff, 40.0);
  EXPECT_NE(subset.size(), 0u);
}

TEST(MathClassifier, Deterministic) {
  const MathClassifier c(0.9);
  const auto& record = test_exam().questions.front().record;
  EXPECT_EQ(c.classify(record, true), c.classify(record, true));
}

TEST(MathClassifier, ZeroAccuracyInverts) {
  const MathClassifier inverted(0.0);
  const auto& q = test_exam().questions.front();
  EXPECT_EQ(inverted.classify(q.record, q.math), !q.math);
}

}  // namespace
}  // namespace mcqa::exam
