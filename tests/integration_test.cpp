// End-to-end integration tests over the full pipeline at small scale:
// funnel sanity, determinism, and the paper's qualitative result shapes.

#include <gtest/gtest.h>

#include <memory>

#include "core/pipeline.hpp"
#include "eval/paper_reference.hpp"

namespace mcqa::core {
namespace {

constexpr double kTestScale = 0.008;  // ~180 docs; builds in ~1s

const PipelineContext& ctx() {
  static const PipelineContext context(
      PipelineConfig::paper_scale(kTestScale));
  return context;
}

// --- pipeline structure --------------------------------------------------------

TEST(Pipeline, FunnelStagesPopulated) {
  const PipelineStats& s = ctx().stats();
  EXPECT_GT(s.documents, 100u);
  EXPECT_GT(s.chunks, s.documents);          // several chunks per doc
  EXPECT_GT(s.funnel.candidates, 0u);
  EXPECT_GT(s.funnel.accepted, 20u);
  EXPECT_LT(s.funnel.accepted, s.funnel.candidates);
  for (int m = 0; m < mcqa::trace::kTraceModeCount; ++m) {
    const auto mi = static_cast<std::size_t>(m);
    EXPECT_EQ(s.traces_per_mode[mi], ctx().benchmark().size());
    EXPECT_GT(s.trace_grading_accuracy[mi], 0.9);  // teacher grades itself
    EXPECT_LE(s.trace_grading_accuracy[mi], 1.0);
  }
  EXPECT_GT(s.embedding_bytes, 0u);
}

TEST(Pipeline, AcceptanceRateNearPaperFunnel) {
  // Paper: 16,680 / 173,318 = 9.6%.  Allow a generous band — the corpus
  // fact density differs — but the filter must bite hard.
  const double rate = ctx().stats().funnel.acceptance_rate();
  EXPECT_GT(rate, 0.03);
  EXPECT_LT(rate, 0.40);
}

TEST(Pipeline, ChunkScaleTracksPaperRatio) {
  // Paper: ~7.7 chunks per document.  Ours should be the same order.
  const double ratio = static_cast<double>(ctx().stats().chunks) /
                       static_cast<double>(ctx().stats().documents);
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 20.0);
}

TEST(Pipeline, ParseFailuresAreRare) {
  const PipelineStats& s = ctx().stats();
  EXPECT_LT(static_cast<double>(s.parse_failures),
            0.05 * static_cast<double>(s.documents));
}

TEST(Pipeline, RoutingUsesBothParsers) {
  const parse::RoutingStats& r = ctx().stats().routing;
  EXPECT_GT(r.fast_routed, 0u);
  EXPECT_GT(r.accurate_routed, 0u);
  EXPECT_GT(r.compute_saving(), 0.1);  // adaptive routing saves compute
}

TEST(Pipeline, TraceStoresBuiltPerMode) {
  for (int m = 0; m < trace::kTraceModeCount; ++m) {
    const auto mode = static_cast<trace::TraceMode>(m);
    EXPECT_EQ(ctx().trace_store(mode).size(), ctx().benchmark().size());
  }
}

TEST(Pipeline, ExamShapeMatchesPaper) {
  EXPECT_EQ(ctx().exam_all().size(), 335u);
  EXPECT_GT(ctx().exam_no_math().size(), 150u);
  EXPECT_LT(ctx().exam_no_math().size(), 230u);
}

TEST(Pipeline, BenchmarkRecordsKeepProvenance) {
  for (const auto& r : ctx().benchmark()) {
    EXPECT_FALSE(r.chunk_id.empty());
    EXPECT_FALSE(r.path.empty());
    EXPECT_FALSE(r.text.empty());
    EXPECT_GE(r.quality_score, 7.0);
  }
}

TEST(Pipeline, DeterministicAcrossRebuilds) {
  // A second context with the same config must produce identical
  // artifacts despite multithreaded construction.
  const PipelineContext other(PipelineConfig::paper_scale(kTestScale));
  ASSERT_EQ(other.benchmark().size(), ctx().benchmark().size());
  for (std::size_t i = 0; i < other.benchmark().size(); ++i) {
    EXPECT_EQ(other.benchmark()[i].record_id,
              ctx().benchmark()[i].record_id);
    EXPECT_EQ(other.benchmark()[i].question, ctx().benchmark()[i].question);
  }
  ASSERT_EQ(other.exam_all().size(), ctx().exam_all().size());
  EXPECT_EQ(other.exam_all()[0].question, ctx().exam_all()[0].question);
}

TEST(Pipeline, EmbedCacheIsPurelyASpeedKnob) {
  // Artifacts must be byte-identical with the embedding cache disabled
  // — ctx() builds with the default (cache on).
  auto cfg = PipelineConfig::paper_scale(kTestScale);
  cfg.embed_cache = false;
  const PipelineContext uncached(cfg);

  ASSERT_EQ(uncached.benchmark().size(), ctx().benchmark().size());
  for (std::size_t i = 0; i < uncached.benchmark().size(); ++i) {
    EXPECT_EQ(uncached.benchmark()[i].to_json().dump(),
              ctx().benchmark()[i].to_json().dump());
  }
  const auto& t0 = uncached.traces(trace::TraceMode::kDetailed);
  const auto& t1 = ctx().traces(trace::TraceMode::kDetailed);
  ASSERT_EQ(t0.size(), t1.size());
  for (std::size_t i = 0; i < t0.size(); ++i) {
    EXPECT_EQ(t0[i].to_json().dump(), t1[i].to_json().dump());
  }

  // And the stats reflect the knob: off -> zeros, on -> real traffic.
  EXPECT_EQ(uncached.stats().embed_cache.hits +
                uncached.stats().embed_cache.misses,
            0u);
  EXPECT_GT(ctx().stats().embed_cache.misses, 0u);
}

// --- paper result shapes ----------------------------------------------------------

TEST(PaperShape, SyntheticRtBeatsChunksBeatsBaseline) {
  const eval::EvalHarness harness(ctx().rag());
  const auto sweep =
      harness.sweep(ctx().student_ptrs(), ctx().student_specs(),
                    ctx().benchmark(), eval::all_conditions());
  for (const auto& card : llm::student_registry()) {
    const double base =
        sweep.at(card.spec.name, rag::Condition::kBaseline).value();
    const double chunks =
        sweep.at(card.spec.name, rag::Condition::kChunks).value();
    const double best_rt = sweep.best_trace(card.spec.name).second.value();
    // Small-sample noise allowance of 3 points.
    EXPECT_GT(chunks + 0.03, base) << card.spec.name;
    EXPECT_GT(best_rt, chunks - 0.03) << card.spec.name;
    EXPECT_GT(best_rt, base) << card.spec.name;
  }
}

TEST(PaperShape, SmallModelsGainMostFromTraces) {
  const eval::EvalHarness harness(ctx().rag());
  const auto sweep =
      harness.sweep(ctx().student_ptrs(), ctx().student_specs(),
                    ctx().benchmark(), eval::all_conditions());
  const auto rel_gain = [&](const char* name) {
    const double base = sweep.at(name, rag::Condition::kBaseline).value();
    const double rt = sweep.best_trace(name).second.value();
    return base > 0.0 ? (rt - base) / base : 0.0;
  };
  // TinyLlama's relative gain dwarfs Llama-3.1's (paper: ~4x vs ~12%).
  EXPECT_GT(rel_gain("TinyLlama-1.1B-Chat"),
            3.0 * rel_gain("Llama-3.1-8B-Instruct"));
}

TEST(PaperShape, AstroChunksHurtOlmo) {
  const eval::EvalHarness harness(ctx().rag());
  const auto& card = llm::student_card("OLMo-7B");
  const llm::StudentModel model(card);
  const double base = harness
                          .evaluate(model, card.spec, ctx().exam_all(),
                                    rag::Condition::kBaseline)
                          .value();
  const double chunks = harness
                            .evaluate(model, card.spec, ctx().exam_all(),
                                      rag::Condition::kChunks)
                            .value();
  // The paper's most distinctive Table 3 feature.
  EXPECT_LT(chunks, base + 0.02);
}

TEST(PaperShape, AstroTracesHurtLlama3OnMath) {
  const eval::EvalHarness harness(ctx().rag());
  const auto& card = llm::student_card("Llama-3-8B-Instruct");
  const llm::StudentModel model(card);
  const double base = harness
                          .evaluate(model, card.spec, ctx().exam_all(),
                                    rag::Condition::kBaseline)
                          .value();
  double best_rt = 0.0;
  for (const auto c : eval::trace_conditions()) {
    best_rt = std::max(best_rt,
                       harness.evaluate(model, card.spec, ctx().exam_all(), c)
                           .value());
  }
  EXPECT_LT(best_rt, base);  // paper: 0.542 vs 0.665
}

TEST(PaperShape, NoMathSubsetRtBestForEveryModel) {
  const eval::EvalHarness harness(ctx().rag());
  const auto sweep =
      harness.sweep(ctx().student_ptrs(), ctx().student_specs(),
                    ctx().exam_no_math(), eval::all_conditions());
  for (const auto& card : llm::student_registry()) {
    const double base =
        sweep.at(card.spec.name, rag::Condition::kBaseline).value();
    const double chunks =
        sweep.at(card.spec.name, rag::Condition::kChunks).value();
    const double best_rt = sweep.best_trace(card.spec.name).second.value();
    EXPECT_GT(best_rt, base - 0.02) << card.spec.name;
    EXPECT_GT(best_rt, chunks - 0.02) << card.spec.name;
  }
}

TEST(PaperShape, SeveralModelsBeatGpt4ReferenceWithTraces) {
  const eval::EvalHarness harness(ctx().rag());
  std::size_t beat = 0;
  for (const auto& card : llm::student_registry()) {
    const llm::StudentModel model(card);
    double best_rt = 0.0;
    for (const auto c : eval::trace_conditions()) {
      best_rt =
          std::max(best_rt,
                   harness.evaluate(model, card.spec, ctx().exam_no_math(), c)
                       .value());
    }
    beat += best_rt > llm::kGpt4AstroReference ? 1 : 0;
  }
  EXPECT_GE(beat, 3u);  // "several small models surpass GPT-4"
}

TEST(Evaluation, DeterministicSweep) {
  const eval::EvalHarness harness(ctx().rag());
  const auto& card = llm::student_card("Mistral-7B-Instruct-v0.3");
  const llm::StudentModel model(card);
  const auto a = harness.evaluate(model, card.spec, ctx().benchmark(),
                                  rag::Condition::kTraceFocused);
  const auto b = harness.evaluate(model, card.spec, ctx().benchmark(),
                                  rag::Condition::kTraceFocused);
  EXPECT_EQ(a.correct, b.correct);
  EXPECT_EQ(a.unparseable, b.unparseable);
}

TEST(Evaluation, WeakModelsProduceUnparseableAnswers) {
  const eval::EvalHarness harness(ctx().rag());
  const auto& tiny = llm::student_card("TinyLlama-1.1B-Chat");
  const llm::StudentModel model(tiny);
  const auto acc = harness.evaluate(model, tiny.spec, ctx().exam_all(),
                                    rag::Condition::kBaseline);
  EXPECT_GT(acc.unparseable, 0u);  // garbled math answers and rambles
}

TEST(Evaluation, TeacherOutscoresEveryStudent) {
  const eval::EvalHarness harness(ctx().rag());
  const auto teacher_acc =
      harness
          .evaluate(ctx().teacher(),
                    llm::ModelSpec{"teacher", "oracle", 1000.0, 2025, 128000},
                    ctx().benchmark(), rag::Condition::kBaseline)
          .value();
  for (const auto& card : llm::student_registry()) {
    const llm::StudentModel model(card);
    const double student_acc =
        harness
            .evaluate(model, card.spec, ctx().benchmark(),
                      rag::Condition::kBaseline)
            .value();
    EXPECT_GT(teacher_acc, student_acc) << card.spec.name;
  }
}

}  // namespace
}  // namespace mcqa::core
