// Unit tests for the retrieval-augmented generation pipeline: store
// routing, window budgeting, context diagnostics.

#include <gtest/gtest.h>

#include <algorithm>

#include "corpus/fact_matcher.hpp"
#include "corpus/realization.hpp"
#include "embed/hashed_embedder.hpp"
#include "index/vector_store.hpp"
#include "llm/model_spec.hpp"
#include "parallel/thread_pool.hpp"
#include "rag/rag_pipeline.hpp"
#include "text/tokenizer.hpp"

namespace mcqa::rag {
namespace {

const corpus::KnowledgeBase& test_kb() {
  static const corpus::KnowledgeBase kb = corpus::KnowledgeBase::generate(
      corpus::KbConfig{.facts_per_topic = 14, .seed = 51, .math_fraction = 0.4});
  return kb;
}

/// Fixture owning a tiny retrieval world built by hand so every
/// diagnostic can be asserted exactly.
class RagFixture : public ::testing::Test {
 protected:
  RagFixture()
      : matcher_(test_kb()),
        chunk_store_(embedder_),
        trace_store_d_(embedder_),
        trace_store_f_(embedder_),
        trace_store_e_(embedder_) {
    const auto& kb = test_kb();
    probed_ = kb.facts()[4];  // a relational fact
    util::Rng rng(7);
    real_ = corpus::realize_question(kb, probed_, rng);

    record_.record_id = "q_fixture";
    record_.stem = real_.stem;
    record_.options.push_back(real_.correct);
    for (const auto& d : real_.distractors) record_.options.push_back(d);
    record_.correct_index = 0;
    record_.answer = real_.correct;
    record_.question =
        qgen::McqRecord::render_question(record_.stem, record_.options);
    record_.fact = probed_.id;
    record_.math = real_.math;

    // Chunk store: the source chunk (carries the fact) + fillers.
    chunk_store_.add("src_chunk",
                     corpus::realize_statement(kb, probed_, 0) +
                         " Additional replication supported the result.");
    // Long filler chunks so window-budget truncation has something to
    // clip when several hits are assembled.
    std::string filler_1;
    std::string filler_2;
    for (int i = 0; i < 10; ++i) {
      filler_1 += "Samples were processed within thirty minutes of "
                  "collection to minimize ex vivo artifacts in every arm. ";
      filler_2 += "The limitations of the study include modest sample size "
                  "and single-institution accrual over two years. ";
    }
    chunk_store_.add("noise_1", filler_1);
    chunk_store_.add("noise_2", filler_2);
    chunk_store_.build();

    // Trace stores: one exact-source trace per mode.
    const std::string principle =
        corpus::realize_statement(kb, probed_, 0);
    trace_store_d_.add("t_detailed_q_fixture",
                       record_.question + "\nOption 1: aligns with " +
                           principle + "\nOption 2: the literature does "
                           "not support this specific relationship.");
    trace_store_f_.add("t_focused_q_fixture",
                       record_.question + "\nKey principle: " + principle +
                           "\nQuickly dismissed: " + record_.options[1] +
                           ". These options contradict the key principle.");
    trace_store_e_.add("t_efficient_q_fixture",
                       record_.question + "\n" + principle);
    trace_store_d_.build();
    trace_store_f_.build();
    trace_store_e_.build();

    stores_.chunks = &chunk_store_;
    stores_.traces[0] = &trace_store_d_;
    stores_.traces[1] = &trace_store_f_;
    stores_.traces[2] = &trace_store_e_;

    spec_ = llm::student_card("Llama-3.1-8B-Instruct").spec;
  }

  RagPipeline make_pipeline(RagConfig cfg = {}) const {
    return RagPipeline(test_kb(), matcher_, stores_, cfg);
  }

  embed::HashedNGramEmbedder embedder_;
  corpus::FactMatcher matcher_;
  index::VectorStore chunk_store_;
  index::VectorStore trace_store_d_;
  index::VectorStore trace_store_f_;
  index::VectorStore trace_store_e_;
  RetrievalStores stores_;
  corpus::Fact probed_;
  corpus::QuestionRealization real_;
  qgen::McqRecord record_;
  llm::ModelSpec spec_;
};

TEST_F(RagFixture, PrepareBatchMatchesSequentialPrepare) {
  const RagPipeline rag = make_pipeline();
  // A small mixed set: the fixture record plus shuffled-option variants
  // so the batch carries distinct retrieval keys.
  std::vector<qgen::McqRecord> records(4, record_);
  for (std::size_t i = 1; i < records.size(); ++i) {
    records[i].record_id = "q_fixture_" + std::to_string(i);
    std::rotate(records[i].options.begin(), records[i].options.begin() + 1,
                records[i].options.end());
    records[i].correct_index =
        static_cast<int>((static_cast<std::size_t>(record_.correct_index) +
                          records[i].options.size() - 1) %
                         records[i].options.size());
    records[i].question = qgen::McqRecord::render_question(
        records[i].stem, records[i].options);
  }

  for (int c = 0; c < kConditionCount; ++c) {
    const auto condition = static_cast<Condition>(c);
    std::vector<llm::McqTask> want;
    for (const auto& r : records) {
      want.push_back(rag.prepare(r, condition, spec_));
    }
    for (const std::size_t threads : {1u, 3u}) {
      parallel::ThreadPool pool(threads);
      const auto got = rag.prepare_batch(records, condition, spec_, pool);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].context, want[i].context)
            << condition_name(condition) << " threads=" << threads;
        EXPECT_EQ(got[i].correct_index, want[i].correct_index);
        EXPECT_EQ(got[i].context_has_fact, want[i].context_has_fact);
        EXPECT_EQ(got[i].context_saliency, want[i].context_saliency);
        EXPECT_EQ(got[i].context_has_elimination,
                  want[i].context_has_elimination);
        EXPECT_EQ(got[i].context_misleading_options,
                  want[i].context_misleading_options);
        EXPECT_EQ(got[i].context_mislead_strength,
                  want[i].context_mislead_strength);
      }
    }
  }
}

TEST(ConditionNames, AllDistinct) {
  std::set<std::string_view> names;
  for (int c = 0; c < kConditionCount; ++c) {
    names.insert(condition_name(static_cast<Condition>(c)));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kConditionCount));
  EXPECT_TRUE(is_trace_condition(Condition::kTraceFocused));
  EXPECT_FALSE(is_trace_condition(Condition::kChunks));
  EXPECT_FALSE(is_trace_condition(Condition::kBaseline));
}

TEST_F(RagFixture, BaselineHasNoContext) {
  const RagPipeline rag = make_pipeline();
  const llm::McqTask task =
      rag.prepare(record_, Condition::kBaseline, spec_);
  EXPECT_TRUE(task.context.empty());
  EXPECT_FALSE(task.context_has_fact);
  EXPECT_EQ(task.correct_index, record_.correct_index);
}

TEST_F(RagFixture, ChunkConditionRetrievesSourceChunk) {
  const RagPipeline rag = make_pipeline();
  const llm::McqTask task = rag.prepare(record_, Condition::kChunks, spec_);
  EXPECT_FALSE(task.context.empty());
  EXPECT_TRUE(task.context_has_fact);
  EXPECT_FALSE(task.context_is_trace);
  EXPECT_GT(task.context_saliency, 0.0);
  EXPECT_LE(task.context_saliency, 1.0);
}

TEST_F(RagFixture, ExactSourceTraceSetsEliminationForDetailAndFocused) {
  const RagPipeline rag = make_pipeline();
  const auto detail =
      rag.prepare(record_, Condition::kTraceDetailed, spec_);
  EXPECT_TRUE(detail.context_is_trace);
  EXPECT_TRUE(detail.context_has_elimination);
  const auto focused =
      rag.prepare(record_, Condition::kTraceFocused, spec_);
  EXPECT_TRUE(focused.context_has_elimination);
  const auto efficient =
      rag.prepare(record_, Condition::kTraceEfficient, spec_);
  EXPECT_TRUE(efficient.context_is_terse);
}

TEST_F(RagFixture, TraceContextCarriesFact) {
  const RagPipeline rag = make_pipeline();
  for (const Condition c : {Condition::kTraceDetailed,
                            Condition::kTraceFocused,
                            Condition::kTraceEfficient}) {
    const auto task = rag.prepare(record_, c, spec_);
    EXPECT_TRUE(task.context_has_fact) << condition_name(c);
  }
}

TEST_F(RagFixture, TinyWindowDropsContext) {
  const RagPipeline rag = make_pipeline();
  llm::ModelSpec tiny = spec_;
  tiny.context_window = 64;  // smaller than question + reserve
  const auto task = rag.prepare(record_, Condition::kChunks, tiny);
  EXPECT_TRUE(task.context.empty());
}

TEST_F(RagFixture, WindowBudgetTruncatesLongContext) {
  RagConfig cfg;
  cfg.top_k_chunks = 3;
  cfg.reserve_tokens = 64;
  const RagPipeline rag = make_pipeline(cfg);
  llm::ModelSpec small = spec_;
  small.context_window = 5000;
  const auto full = rag.prepare(record_, Condition::kChunks, small);
  small.context_window = 300;  // forces partial fit
  const auto clipped = rag.prepare(record_, Condition::kChunks, small);
  EXPECT_LT(clipped.context.size(), full.context.size());
}

TEST_F(RagFixture, MisleadingSupportDetected) {
  // Build a chunk store whose best hit asserts a relation about a
  // distractor entity and the probed object, WITHOUT the probed fact.
  const auto& kb = test_kb();
  index::VectorStore misleading_store(embedder_);
  const std::string obj_name = kb.entity(probed_.object).name;
  // Find a distractor that is a KB entity.
  std::string distractor_entity;
  for (std::size_t i = 1; i < record_.options.size(); ++i) {
    if (kb.find_entity(record_.options[i]).has_value()) {
      distractor_entity = record_.options[i];
      break;
    }
  }
  if (distractor_entity.empty()) GTEST_SKIP() << "no entity distractor";
  misleading_store.add(
      "near_miss", distractor_entity + " strongly modulates " + obj_name +
                       " in irradiated tissues according to recent reports.");
  misleading_store.build();

  RetrievalStores stores = stores_;
  stores.chunks = &misleading_store;
  const RagPipeline rag(kb, matcher_, stores, RagConfig{});
  const auto task = rag.prepare(record_, Condition::kChunks, spec_);
  EXPECT_FALSE(task.context_has_fact);
  ASSERT_FALSE(task.context_misleading_options.empty());
  EXPECT_DOUBLE_EQ(task.context_mislead_strength, 1.0);
  // The flagged option is a wrong option.
  for (const int i : task.context_misleading_options) {
    EXPECT_NE(i, task.correct_index);
  }
}

TEST_F(RagFixture, DismissedOptionsNotMisleading) {
  const auto& kb = test_kb();
  index::VectorStore store(embedder_);
  std::string distractor_entity;
  for (std::size_t i = 1; i < record_.options.size(); ++i) {
    if (kb.find_entity(record_.options[i]).has_value()) {
      distractor_entity = record_.options[i];
      break;
    }
  }
  if (distractor_entity.empty()) GTEST_SKIP() << "no entity distractor";
  store.add("dismissal",
            distractor_entity +
                " participates in other pathways but the literature does "
                "not support this specific relationship with " +
                kb.entity(probed_.object).name + ".");
  store.build();
  RetrievalStores stores = stores_;
  stores.chunks = &store;
  const RagPipeline rag(kb, matcher_, stores, RagConfig{});
  const auto task = rag.prepare(record_, Condition::kChunks, spec_);
  EXPECT_TRUE(task.context_misleading_options.empty());
}

TEST_F(RagFixture, WorkedMathFlagOnlyForMathRecordsWithTraceFact) {
  RagConfig cfg;
  const RagPipeline rag = make_pipeline(cfg);
  // Non-math record: flag must stay false even with exact trace.
  const auto task = rag.prepare(record_, Condition::kTraceFocused, spec_);
  if (!record_.math) {
    EXPECT_FALSE(task.context_has_worked_math);
  }
}

TEST_F(RagFixture, StoreForMapsConditions) {
  EXPECT_EQ(stores_.store_for(Condition::kBaseline), nullptr);
  EXPECT_EQ(stores_.store_for(Condition::kChunks), &chunk_store_);
  EXPECT_EQ(stores_.store_for(Condition::kTraceDetailed), &trace_store_d_);
  EXPECT_EQ(stores_.store_for(Condition::kTraceFocused), &trace_store_f_);
  EXPECT_EQ(stores_.store_for(Condition::kTraceEfficient), &trace_store_e_);
}

TEST_F(RagFixture, MissingStoreFallsBackToBaseline) {
  RetrievalStores stores;  // all null
  const RagPipeline rag(test_kb(), matcher_, stores, RagConfig{});
  const auto task = rag.prepare(record_, Condition::kChunks, spec_);
  EXPECT_TRUE(task.context.empty());
}

TEST(RagConfigTest, TopKPerCondition) {
  RagConfig cfg;
  cfg.top_k_chunks = 9;
  cfg.top_k_traces = 2;
  EXPECT_EQ(cfg.top_k_for(Condition::kChunks), 9u);
  EXPECT_EQ(cfg.top_k_for(Condition::kTraceDetailed), 2u);
  EXPECT_EQ(cfg.top_k_for(Condition::kTraceEfficient), 2u);
}

}  // namespace
}  // namespace mcqa::rag
