// Unit tests for text processing: normalization, sentence splitting,
// tokenization, BPE, vocabulary.

#include <gtest/gtest.h>

#include "text/bpe.hpp"
#include "text/normalize.hpp"
#include "text/sentence.hpp"
#include "text/tokenizer.hpp"
#include "text/vocab.hpp"

namespace mcqa::text {
namespace {

// --- normalize ---------------------------------------------------------------

TEST(Normalize, CollapsesWhitespaceAndLowercases) {
  EXPECT_EQ(normalize_ws("  Hello   World\t\nAgain  "), "hello world again");
  EXPECT_EQ(normalize_ws(""), "");
  EXPECT_EQ(normalize_ws("   "), "");
}

TEST(NormalizeForMatching, KeepsIntraWordMarks) {
  EXPECT_EQ(normalize_for_matching("Cobalt-60 gamma rays!"),
            "cobalt-60 gamma rays");
  EXPECT_EQ(normalize_for_matching("dose of 2.5 Gy."), "dose of 2.5 gy");
  EXPECT_EQ(normalize_for_matching("p53, ATM; and (RAD51)"),
            "p53 atm and rad51");
}

TEST(NormalizeForMatching, DropsDanglingPunctuation) {
  EXPECT_EQ(normalize_for_matching("end- of line"), "end of line");
  EXPECT_EQ(normalize_for_matching("...leading"), "leading");
}

// --- sentences ----------------------------------------------------------------

TEST(Sentences, BasicSplit) {
  const auto s = split_sentences("First one. Second one! Third?");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].text, "First one.");
  EXPECT_EQ(s[1].text, "Second one!");
  EXPECT_EQ(s[2].text, "Third?");
}

TEST(Sentences, OffsetsPointIntoSource) {
  const std::string src = "Alpha beta. Gamma delta.";
  const auto s = split_sentences(src);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(src.substr(s[1].begin, s[1].end - s[1].begin), "Gamma delta.");
}

TEST(Sentences, AbbreviationsDontSplit) {
  const auto s = split_sentences(
      "As shown by Smith et al. the effect persists. See Fig. 3 for details.");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_NE(s[0].text.find("et al."), std::string::npos);
}

TEST(Sentences, DecimalNumbersDontSplit) {
  const auto s = split_sentences("The dose was 2.5 Gy. Cells died.");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].text, "The dose was 2.5 Gy.");
}

TEST(Sentences, InitialsDontSplit) {
  const auto s = split_sentences("Reported by J. Smith. Confirmed later.");
  ASSERT_EQ(s.size(), 2u);
}

TEST(Sentences, ParagraphBreakEndsSentence) {
  const auto s = split_sentences("No terminator here\n\nNext paragraph.");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].text, "No terminator here");
}

TEST(Sentences, TrailingTextWithoutTerminator) {
  const auto s = split_sentences("Complete. incomplete trailing text");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[1].text, "incomplete trailing text");
}

TEST(Sentences, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(split_sentences("").empty());
  EXPECT_TRUE(split_sentences("   \n\t ").empty());
}

TEST(Sentences, ClosingQuotesAndParens) {
  const auto s = split_sentences("He said \"stop.\" Then left.");
  ASSERT_EQ(s.size(), 2u);
}

// --- tokenizer ------------------------------------------------------------------

TEST(Tokenizer, WordsAndPunctuation) {
  const auto toks = word_tokenize("TP53 activates apoptosis, strongly.");
  ASSERT_EQ(toks.size(), 6u);
  EXPECT_EQ(toks[0].text, "TP53");
  EXPECT_EQ(toks[3].text, ",");
  EXPECT_EQ(toks[5].text, ".");
}

TEST(Tokenizer, KeepsHyphenatedAndDecimal) {
  const auto toks = word_tokenize("cobalt-60 at 2.5 Gy");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "cobalt-60");
  EXPECT_EQ(toks[2].text, "2.5");
}

TEST(Tokenizer, OffsetsMatchSource) {
  const std::string src = "ab cd";
  const auto toks = word_tokenize(src);
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(src.substr(toks[1].begin, toks[1].end - toks[1].begin), "cd");
}

TEST(Tokenizer, CountWords) {
  EXPECT_EQ(count_words(""), 0u);
  EXPECT_EQ(count_words("one"), 1u);
  EXPECT_EQ(count_words("  one   two three  "), 3u);
}

TEST(Tokenizer, ApproxLlmTokensInflates) {
  const std::size_t words = 30;
  std::string text;
  for (std::size_t i = 0; i < words; ++i) text += "word ";
  const std::size_t toks = approx_llm_tokens(text);
  EXPECT_GT(toks, words);
  EXPECT_LT(toks, words * 2);
}

TEST(Tokenizer, WordNgrams) {
  const auto unigrams = word_ngrams("a b c", 1);
  EXPECT_EQ(unigrams, (std::vector<std::string>{"a", "b", "c"}));
  const auto bigrams = word_ngrams("a b c", 2);
  EXPECT_EQ(bigrams, (std::vector<std::string>{"a b", "b c"}));
  EXPECT_TRUE(word_ngrams("a", 2).empty());
  EXPECT_TRUE(word_ngrams("a b", 0).empty());
}

// --- BPE -------------------------------------------------------------------------

TEST(Bpe, TrainsAndEncodesDeterministically) {
  const std::string corpus =
      "radiation induces apoptosis radiation induces arrest "
      "radiation biology radiation therapy apoptosis pathway";
  const BpeTokenizer t1 = BpeTokenizer::train(corpus, 100);
  const BpeTokenizer t2 = BpeTokenizer::train(corpus, 100);
  const auto ids1 = t1.encode("radiation induces apoptosis");
  const auto ids2 = t2.encode("radiation induces apoptosis");
  EXPECT_EQ(ids1, ids2);
  EXPECT_FALSE(ids1.empty());
}

TEST(Bpe, DecodeInvertsEncodeOnTrainedText) {
  const std::string corpus =
      "the cell cycle checkpoint controls the cell cycle arrest after "
      "the radiation dose is delivered to the cell";
  const BpeTokenizer t = BpeTokenizer::train(corpus, 200);
  const std::string sample = "the cell cycle arrest";
  EXPECT_EQ(t.decode(t.encode(sample)), sample);
}

TEST(Bpe, FrequentPairsMerge) {
  std::string corpus;
  for (int i = 0; i < 50; ++i) corpus += "abab ";
  const BpeTokenizer t = BpeTokenizer::train(corpus, 64);
  EXPECT_GT(t.merge_count(), 0u);
  // "abab" should encode to far fewer tokens than its character count.
  EXPECT_LT(t.encode("abab").size(), 4u);
}

TEST(Bpe, VocabBudgetRespected) {
  std::string corpus;
  for (int i = 0; i < 30; ++i) {
    corpus += "alpha beta gamma delta epsilon zeta ";
  }
  const BpeTokenizer t = BpeTokenizer::train(corpus, 40);
  EXPECT_LE(t.vocab_size(), 40u);
}

TEST(Bpe, UnknownCharactersMapToUnk) {
  const BpeTokenizer t = BpeTokenizer::train("aaa bbb aaa bbb", 32);
  const auto ids = t.encode("zzz");
  ASSERT_FALSE(ids.empty());
  for (const auto id : ids) {
    // id 0 is <unk>; characters unseen in training can only be unk or
    // end-of-word.
    EXPECT_TRUE(id == 0 || t.token(id) == "</w>") << t.token(id);
  }
}

TEST(Bpe, SaveLoadRoundTrip) {
  const std::string corpus =
      "homologous recombination repairs double strand breaks "
      "non-homologous end joining repairs breaks quickly";
  const BpeTokenizer t = BpeTokenizer::train(corpus, 150);
  const BpeTokenizer loaded = BpeTokenizer::load(t.save());
  EXPECT_EQ(loaded.vocab_size(), t.vocab_size());
  EXPECT_EQ(loaded.merge_count(), t.merge_count());
  const std::string probe = "recombination repairs breaks";
  EXPECT_EQ(loaded.encode(probe), t.encode(probe));
}

TEST(Bpe, LoadRejectsBadMagic) {
  EXPECT_THROW(BpeTokenizer::load("not-a-bpe-blob"), std::runtime_error);
}

TEST(Bpe, EmptyInputEncodesEmpty) {
  const BpeTokenizer t = BpeTokenizer::train("some text here", 32);
  EXPECT_TRUE(t.encode("").empty());
  EXPECT_EQ(t.decode({}), "");
}

// --- vocabulary -------------------------------------------------------------------

TEST(Vocabulary, InternAndLookup) {
  Vocabulary v;
  const auto id1 = v.intern("apoptosis");
  const auto id2 = v.intern("apoptosis");
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(v.id("apoptosis"), id1);
  EXPECT_EQ(v.id("never-seen"), Vocabulary::kUnknown);
  EXPECT_EQ(v.word(id1), "apoptosis");
}

TEST(Vocabulary, FrequenciesFromText) {
  Vocabulary v;
  v.add_text("a b a a c");
  EXPECT_EQ(v.frequency(v.id("a")), 3u);
  EXPECT_EQ(v.frequency(v.id("b")), 1u);
  EXPECT_EQ(v.total_count(), 5u);
}

TEST(Vocabulary, IdfOrdering) {
  Vocabulary v;
  std::string text;
  for (int i = 0; i < 100; ++i) text += "common ";
  text += "rare";
  v.add_text(text);
  EXPECT_GT(v.idf(v.id("rare")), v.idf(v.id("common")));
  EXPECT_GE(v.idf(v.id("common")), 0.0);
}

TEST(Vocabulary, EncodeMapsUnknowns) {
  Vocabulary v;
  v.add_text("alpha beta");
  const auto ids = v.encode("alpha gamma beta");
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_NE(ids[0], Vocabulary::kUnknown);
  EXPECT_EQ(ids[1], Vocabulary::kUnknown);
  EXPECT_NE(ids[2], Vocabulary::kUnknown);
}

}  // namespace
}  // namespace mcqa::text
