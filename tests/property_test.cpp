// Cross-cutting property tests: parameterized sweeps asserting the
// invariants that hold across configurations — index recall across
// sizes/dims, chunker invariants across configs, simulation monotonicity
// in each behavioural dial, window budgeting across the whole model
// registry, and batch-vs-streaming pipeline equivalence.

#include <gtest/gtest.h>

#include <memory>

#include "core/pipeline.hpp"
#include "core/streaming.hpp"
#include "corpus/corpus_builder.hpp"
#include "index/vector_index.hpp"
#include "llm/student_model.hpp"
#include "text/tokenizer.hpp"
#include "text/bpe.hpp"

namespace mcqa {
namespace {

// --- index recall across (kind, n, dim) ------------------------------------------

struct IndexCase {
  index::IndexKind kind;
  std::size_t n;
  std::size_t dim;
};

class IndexRecallSweep : public ::testing::TestWithParam<IndexCase> {};

TEST_P(IndexRecallSweep, RecallAboveFloor) {
  const auto [kind, n, dim] = GetParam();
  util::Rng rng(n * 31 + dim);
  std::vector<embed::Vector> data;
  for (std::size_t i = 0; i < n; ++i) {
    embed::Vector v(dim);
    for (auto& x : v) x = static_cast<float>(rng.normal());
    embed::normalize(v);
    data.push_back(std::move(v));
  }
  std::unique_ptr<index::VectorIndex> idx;
  switch (kind) {
    case index::IndexKind::kFlat:
      idx = std::make_unique<index::FlatIndex>(dim);
      break;
    case index::IndexKind::kIvf:
      idx = std::make_unique<index::IvfIndex>(dim);
      break;
    case index::IndexKind::kHnsw:
      idx = std::make_unique<index::HnswIndex>(dim);
      break;
  }
  for (const auto& v : data) idx->add(v);
  idx->build();

  double recall = 0.0;
  constexpr int kQueries = 20;
  for (int q = 0; q < kQueries; ++q) {
    embed::Vector query(dim);
    for (auto& x : query) x = static_cast<float>(rng.normal());
    embed::normalize(query);
    recall += index::recall_at_k(idx->search(query, 5),
                                 index::exact_search(data, query, 5));
  }
  recall /= kQueries;
  EXPECT_GT(recall, kind == index::IndexKind::kFlat ? 0.99 : 0.5)
      << "n=" << n << " dim=" << dim;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IndexRecallSweep,
    ::testing::Values(IndexCase{index::IndexKind::kFlat, 100, 8},
                      IndexCase{index::IndexKind::kFlat, 1000, 64},
                      IndexCase{index::IndexKind::kIvf, 300, 16},
                      IndexCase{index::IndexKind::kIvf, 2000, 32},
                      IndexCase{index::IndexKind::kHnsw, 300, 16},
                      IndexCase{index::IndexKind::kHnsw, 2000, 32}));

// --- chunker invariants across configs ----------------------------------------------

class ChunkerConfigSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ChunkerConfigSweep, InvariantsHold) {
  const auto [target, min_words] = GetParam();
  static const corpus::KnowledgeBase kb = corpus::KnowledgeBase::generate(
      corpus::KbConfig{.facts_per_topic = 12, .seed = 111, .math_fraction = 0.4});
  const corpus::PaperGenerator gen(kb, corpus::PaperGenConfig{});
  const corpus::PaperSpec spec =
      gen.generate(0, corpus::DocKind::kFullPaper, util::Rng(7));
  parse::ParsedDocument doc;
  doc.doc_id = spec.doc_id;
  for (const auto& s : spec.sections) {
    parse::ParsedSection section;
    section.heading = s.heading;
    for (const auto& sentence : s.sentences) {
      if (!section.text.empty()) section.text += ' ';
      section.text += sentence.text;
    }
    doc.sections.push_back(std::move(section));
  }

  const embed::HashedNGramEmbedder emb;
  chunk::ChunkerConfig cfg;
  cfg.target_words = target;
  cfg.max_words = target * 2;
  cfg.min_words = min_words;
  const chunk::SemanticChunker chunker(emb, cfg);
  const auto chunks = chunker.chunk(doc);
  ASSERT_FALSE(chunks.empty());

  std::size_t total_words = 0;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_FALSE(chunks[i].text.empty());
    EXPECT_EQ(chunks[i].doc_id, doc.doc_id);
    total_words += chunks[i].word_count;
    // Hard cap with one-sentence slack.
    EXPECT_LE(chunks[i].word_count, cfg.max_words + 45);
  }
  // Total content preserved (chunking neither duplicates nor drops).
  std::size_t doc_words = 0;
  for (const auto& s : doc.sections) doc_words += text::count_words(s.text);
  EXPECT_EQ(total_words, doc_words);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChunkerConfigSweep,
                         ::testing::Combine(::testing::Values(60u, 120u, 200u),
                                            ::testing::Values(10u, 40u)));

// --- simulation monotonicity ------------------------------------------------------

double sim_accuracy(const llm::StudentProfile& profile,
                    bool with_trace_ctx = false) {
  llm::ModelCard card;
  card.spec.name = "probe-model";
  card.profile = profile;
  const llm::StudentModel model(card);
  std::size_t correct = 0;
  constexpr int kTrials = 600;
  for (int i = 0; i < kTrials; ++i) {
    llm::McqTask task;
    task.id = "p_" + std::to_string(i);
    task.stem = "probe?";
    for (int o = 0; o < 7; ++o) task.options.push_back("opt" + std::to_string(o));
    task.correct_index = i % 7;
    task.fact = static_cast<corpus::FactId>(i);
    task.has_fact = true;
    task.fact_importance = 0.75;
    if (with_trace_ctx) {
      task.context = "ctx";
      task.context_is_trace = true;
      task.context_has_fact = true;
      task.context_saliency = 0.4;
      task.context_has_elimination = true;
    }
    correct += model.answer(task).chosen_index == task.correct_index ? 1 : 0;
  }
  return static_cast<double>(correct) / kTrials;
}

TEST(SimulationMonotonicity, AccuracyRisesWithKnowledge) {
  llm::StudentProfile lo;
  lo.knowledge = 0.1;
  llm::StudentProfile hi = lo;
  hi.knowledge = 0.8;
  EXPECT_GT(sim_accuracy(hi), sim_accuracy(lo) + 0.3);
}

TEST(SimulationMonotonicity, AccuracyRisesWithElimination) {
  llm::StudentProfile lo;
  lo.knowledge = 0.0;
  lo.elimination = 0.0;
  llm::StudentProfile hi = lo;
  hi.elimination = 0.7;
  EXPECT_GT(sim_accuracy(hi), sim_accuracy(lo) + 0.1);
}

TEST(SimulationMonotonicity, TraceContextHelpsEveryProfile) {
  for (const double knowledge : {0.05, 0.4, 0.8}) {
    llm::StudentProfile p;
    p.knowledge = knowledge;
    EXPECT_GT(sim_accuracy(p, /*with_trace_ctx=*/true),
              sim_accuracy(p, /*with_trace_ctx=*/false))
        << "knowledge=" << knowledge;
  }
}

TEST(SimulationMonotonicity, AccuracyRisesWithExtractionGivenContext) {
  llm::StudentProfile lo;
  lo.knowledge = 0.1;
  lo.extraction = 0.2;
  llm::StudentProfile hi = lo;
  hi.extraction = 0.95;
  EXPECT_GT(sim_accuracy(hi, true), sim_accuracy(lo, true) + 0.15);
}

TEST(SimulationMonotonicity, FormatUnreliabilityCostsAccuracy) {
  llm::StudentProfile good;
  good.knowledge = 0.8;
  good.format_reliability = 1.0;
  llm::StudentProfile bad = good;
  bad.format_reliability = 0.5;
  EXPECT_GT(sim_accuracy(good), sim_accuracy(bad) + 0.05);
}

// --- RAG window budgeting across the registry ---------------------------------------

class RegistryWindowSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RegistryWindowSweep, ContextFitsEveryModelWindow) {
  static const core::PipelineContext ctx(
      core::PipelineConfig::paper_scale(0.004));
  const auto& card = llm::student_registry()[GetParam()];
  for (const auto& record : ctx.benchmark()) {
    const llm::McqTask task = ctx.rag().prepare(
        record, rag::Condition::kChunks, card.spec);
    const std::size_t used = text::approx_llm_tokens(task.context) +
                             text::approx_llm_tokens(task.stem);
    EXPECT_LE(used + 128, card.spec.context_window)
        << card.spec.name << " " << record.record_id;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, RegistryWindowSweep,
                         ::testing::Range<std::size_t>(0, 8));

// --- batch vs streaming equivalence ---------------------------------------------------

TEST(Streaming, MatchesBatchPipelineArtifacts) {
  static const corpus::KnowledgeBase kb = corpus::KnowledgeBase::generate(
      corpus::KbConfig{.facts_per_topic = 12, .seed = 121, .math_fraction = 0.4});
  corpus::CorpusConfig ccfg;
  ccfg.scale = 0.002;
  const auto corpus = corpus::build_corpus(kb, ccfg);

  const embed::HashedNGramEmbedder emb;
  const core::StreamingResult streaming =
      core::run_streaming_ingest(corpus.documents, emb);

  // Reference: sequential batch form with identical stage configs.
  const parse::AdaptiveParser parser;
  const chunk::SemanticChunker chunker(emb);
  std::vector<chunk::Chunk> reference;
  for (const auto& raw : corpus.documents) {
    auto outcome = parser.parse(raw.bytes);
    if (!outcome.ok) continue;
    if (outcome.document.doc_id.empty()) {
      outcome.document.doc_id = raw.doc_id;
    }
    for (auto& c : chunker.chunk(outcome.document)) {
      reference.push_back(std::move(c));
    }
  }

  ASSERT_EQ(streaming.chunks.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(streaming.chunks[i].chunk_id, reference[i].chunk_id);
    EXPECT_EQ(streaming.chunks[i].text, reference[i].text);
  }
  ASSERT_EQ(streaming.embeddings.size(), streaming.chunks.size());
  for (std::size_t i = 0; i < streaming.chunks.size(); ++i) {
    EXPECT_EQ(streaming.embeddings[i], emb.embed(streaming.chunks[i].text));
  }
}

TEST(Streaming, WorkerCountInvariant) {
  static const corpus::KnowledgeBase kb = corpus::KnowledgeBase::generate(
      corpus::KbConfig{.facts_per_topic = 12, .seed = 131, .math_fraction = 0.4});
  corpus::CorpusConfig ccfg;
  ccfg.scale = 0.001;
  const auto corpus = corpus::build_corpus(kb, ccfg);
  const embed::HashedNGramEmbedder emb;

  core::StreamingConfig one;
  one.parse_workers = one.chunk_workers = one.embed_workers = 1;
  core::StreamingConfig many;
  many.parse_workers = many.chunk_workers = many.embed_workers = 6;

  const auto a = core::run_streaming_ingest(corpus.documents, emb, one);
  const auto b = core::run_streaming_ingest(corpus.documents, emb, many);
  ASSERT_EQ(a.chunks.size(), b.chunks.size());
  for (std::size_t i = 0; i < a.chunks.size(); ++i) {
    EXPECT_EQ(a.chunks[i].chunk_id, b.chunks[i].chunk_id);
  }
  EXPECT_EQ(a.parse_failures, b.parse_failures);
}

// --- BPE vocab-budget sweep ------------------------------------------------------------

class BpeBudgetSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BpeBudgetSweep, CompressionImprovesWithVocab) {
  static const std::string corpus = [] {
    const corpus::KnowledgeBase kb = corpus::KnowledgeBase::generate(
        corpus::KbConfig{.facts_per_topic = 16, .seed = 141, .math_fraction = 0.4});
    std::string text;
    for (const auto& f : kb.facts()) {
      text += corpus::realize_statement(kb, f, 0);
      text += ' ';
    }
    return text;
  }();
  const std::size_t budget = GetParam();
  const text::BpeTokenizer t = text::BpeTokenizer::train(corpus, budget);
  EXPECT_LE(t.vocab_size(), budget);
  const auto ids = t.encode(corpus.substr(0, 2000));
  // Sanity: tokenization never exceeds character count, and any trained
  // merge set beats character-level by a comfortable margin.
  EXPECT_LT(ids.size(), 2000u);
  if (budget >= 400) {
    EXPECT_LT(ids.size(), 1200u);
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, BpeBudgetSweep,
                         ::testing::Values(64u, 200u, 400u, 1000u));

}  // namespace
}  // namespace mcqa
