// Unit tests for the parallel substrate: thread pool, bounded queue,
// staged pipeline.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "parallel/bounded_queue.hpp"
#include "parallel/pipeline.hpp"
#include "parallel/thread_pool.hpp"

namespace mcqa::parallel {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(4);
  auto fut = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitWithArguments) {
  ThreadPool pool(2);
  auto fut = pool.submit([](int a, int b) { return a + b; }, 20, 22);
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleDrainsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.enqueue([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, NestedEnqueueCounted) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.enqueue([&] {
      count.fetch_add(1);
      pool.enqueue([&count] { count.fetch_add(1); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  parallel_for(pool, 0, 100, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroThreadCountDefaultsToHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ParallelFor, CoversExactRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  parallel_for(pool, 0, hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  parallel_for(pool, 5, 5, [&](std::size_t) { ran = true; });
  parallel_for(pool, 7, 3, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 0, 100,
                   [](std::size_t i) {
                     if (i == 37) throw std::logic_error("bad index");
                   },
                   /*grain=*/1),
      std::logic_error);
}

TEST(ParallelMap, PreservesOrder) {
  ThreadPool pool(4);
  std::vector<int> in(200);
  std::iota(in.begin(), in.end(), 0);
  const auto out = parallel_map(pool, in, [](const int& x) { return x * x; });
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(16);
  for (int i = 0; i < 10; ++i) q.push(i);
  for (int i = 0; i < 10; ++i) {
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueue, PopAfterCloseDrainsThenEnds) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, PushAfterCloseRejected) {
  BoundedQueue<int> q(4);
  q.close();
  EXPECT_FALSE(q.push(1));
  EXPECT_TRUE(q.closed());
}

TEST(BoundedQueue, TryPopNonBlocking) {
  BoundedQueue<int> q(4);
  EXPECT_FALSE(q.try_pop().has_value());
  q.push(5);
  EXPECT_EQ(q.try_pop(), 5);
}

TEST(BoundedQueue, BackpressureBlocksUntilConsumed) {
  BoundedQueue<int> q(2);
  q.push(1);
  q.push(2);
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    q.push(3);  // blocks until a pop frees capacity
    third_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_pushed.load());
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
}

TEST(BoundedQueue, ManyProducersManyConsumers) {
  BoundedQueue<int> q(8);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::atomic<long> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q] {
      for (int i = 1; i <= kPerProducer; ++i) q.push(i);
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) sum.fetch_add(*v);
    });
  }
  for (auto& t : threads) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(sum.load(),
            static_cast<long>(kProducers) * kPerProducer * (kPerProducer + 1) / 2);
}

TEST(BoundedQueue, CloseUnblocksProducersBlockedOnFull) {
  BoundedQueue<int> q(1);
  q.push(0);  // queue now full
  std::atomic<int> dropped{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&] {
      if (!q.push(99)) dropped.fetch_add(1);  // blocked until close
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();  // must wake every blocked producer promptly
  for (auto& t : producers) t.join();
  EXPECT_EQ(dropped.load(), 3);
  EXPECT_EQ(q.pop(), 0);  // the pre-close item still drains
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, CloseUnblocksConsumersBlockedOnEmpty) {
  BoundedQueue<int> q(4);
  std::atomic<int> ended{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      if (!q.pop().has_value()) ended.fetch_add(1);  // blocked until close
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(ended.load(), 3);
}

/// Shutdown mid-stream must lose nothing already accepted and duplicate
/// nothing: every push that returned true is popped exactly once.
void shutdown_no_loss_no_dup(int producers, int consumers) {
  BoundedQueue<int> q(4);
  constexpr int kPerProducer = 400;
  std::atomic<long> accepted_sum{0};
  std::atomic<long> popped_sum{0};
  std::atomic<int> popped_count{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int v = p * kPerProducer + i + 1;
        if (q.push(v)) {
          accepted_sum.fetch_add(v);
        } else {
          return;  // closed under us — everything after is rejected too
        }
      }
    });
  }
  std::vector<std::thread> drains;
  for (int c = 0; c < consumers; ++c) {
    drains.emplace_back([&] {
      while (auto v = q.pop()) {
        popped_sum.fetch_add(*v);
        popped_count.fetch_add(1);
      }
    });
  }
  // Close while producers are (likely) mid-stream; any interleaving is
  // acceptable as long as the accounting balances.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  q.close();
  for (auto& t : threads) t.join();
  for (auto& t : drains) t.join();
  EXPECT_EQ(popped_sum.load(), accepted_sum.load());
  EXPECT_LE(popped_count.load(), producers * kPerProducer);
}

TEST(BoundedQueue, ShutdownNoLossNoDupOneThread) {
  shutdown_no_loss_no_dup(1, 1);
}

TEST(BoundedQueue, ShutdownNoLossNoDupTwoThreads) {
  shutdown_no_loss_no_dup(2, 2);
}

TEST(BoundedQueue, ShutdownNoLossNoDupEightThreads) {
  shutdown_no_loss_no_dup(8, 8);
}

TEST(RunStage, OrderStableOneToMany) {
  std::vector<int> inputs{1, 2, 3, 4, 5};
  const auto out = run_stage<int, int>(
      inputs,
      [](const int& x) { return std::vector<int>{x * 10, x * 10 + 1}; },
      /*workers=*/4);
  ASSERT_EQ(out.size(), 10u);
  // Input-major order regardless of worker scheduling.
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[1], 11);
  EXPECT_EQ(out[8], 50);
  EXPECT_EQ(out[9], 51);
}

TEST(RunStage, EmptyOutputsAllowed) {
  std::vector<int> inputs{1, 2, 3};
  const auto out = run_stage<int, int>(
      inputs,
      [](const int& x) {
        return x == 2 ? std::vector<int>{} : std::vector<int>{x};
      },
      2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 3);
}

TEST(RunMapStage, OneToOne) {
  std::vector<std::string> inputs{"a", "bb", "ccc"};
  const auto out = run_map_stage<std::string, std::size_t>(
      inputs, [](const std::string& s) { return s.size(); }, 3);
  EXPECT_EQ(out, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(StageStats, Throughput) {
  StageStats s;
  s.items_in = 100;
  s.seconds = 2.0;
  EXPECT_DOUBLE_EQ(s.items_per_second(), 50.0);
  s.seconds = 0.0;
  EXPECT_DOUBLE_EQ(s.items_per_second(), 0.0);
}

}  // namespace
}  // namespace mcqa::parallel
