// Unit tests for the model layer: registry, student mechanics, teacher
// oracle, n-gram backend.

#include <gtest/gtest.h>

#include <set>

#include "chunk/chunker.hpp"
#include "corpus/fact_matcher.hpp"
#include "corpus/realization.hpp"
#include "llm/model_spec.hpp"
#include "llm/ngram_lm.hpp"
#include "llm/student_model.hpp"
#include "llm/teacher_model.hpp"

namespace mcqa::llm {
namespace {

const corpus::KnowledgeBase& test_kb() {
  static const corpus::KnowledgeBase kb = corpus::KnowledgeBase::generate(
      corpus::KbConfig{.facts_per_topic = 14, .seed = 21, .math_fraction = 0.4});
  return kb;
}

const corpus::FactMatcher& test_matcher() {
  static const corpus::FactMatcher matcher(test_kb());
  return matcher;
}

chunk::Chunk fact_chunk(corpus::FactId fid) {
  chunk::Chunk c;
  c.chunk_id = "testchunk_" + std::to_string(fid);
  c.doc_id = "doc";
  c.path = "corpus/doc.spdf";
  c.text = "Irradiated cultures were assayed in triplicate. " +
           corpus::realize_statement(test_kb(), test_kb().fact(fid), 0) +
           " Additional observations were recorded for completeness.";
  c.word_count = 30;
  return c;
}

McqTask simple_task(int correct = 1, std::size_t options = 7) {
  McqTask task;
  task.id = "task_1";
  task.stem = "Which factor activates apoptosis after irradiation?";
  for (std::size_t i = 0; i < options; ++i) {
    task.options.push_back("option " + std::to_string(i));
  }
  task.correct_index = correct;
  task.fact = test_kb().facts().front().id;
  task.has_fact = true;
  task.fact_importance = 0.8;
  return task;
}

// --- registry / Table 1 -----------------------------------------------------------

TEST(Registry, HasEightModelsInPaperOrder) {
  const auto& reg = student_registry();
  ASSERT_EQ(reg.size(), 8u);
  EXPECT_EQ(reg[0].spec.name, "OLMo-7B");
  EXPECT_EQ(reg[1].spec.name, "TinyLlama-1.1B-Chat");
  EXPECT_EQ(reg[7].spec.name, "Qwen-1.5-14B-Chat");
}

TEST(Registry, Table1SpecsMatchPaper) {
  EXPECT_EQ(student_card("OLMo-7B").spec.context_window, 2048u);
  EXPECT_EQ(student_card("TinyLlama-1.1B-Chat").spec.params_billions, 1.1);
  EXPECT_EQ(student_card("Gemma 3 4B-IT").spec.context_window, 128000u);
  EXPECT_EQ(student_card("Gemma 3 4B-IT").spec.release_year, 2025);
  EXPECT_EQ(student_card("SmolLM3-3B").spec.context_window, 32768u);
  EXPECT_EQ(student_card("Mistral-7B-Instruct-v0.3").spec.context_window,
            4096u);
  EXPECT_EQ(student_card("Llama-3-8B-Instruct").spec.context_window, 8192u);
  EXPECT_EQ(student_card("Llama-3.1-8B-Instruct").spec.context_window,
            32768u);
  EXPECT_EQ(student_card("Qwen-1.5-14B-Chat").spec.params_billions, 14.0);
}

TEST(Registry, UnknownModelThrows) {
  EXPECT_THROW(student_card("GPT-7"), std::out_of_range);
}

TEST(Registry, ProfilesInValidRanges) {
  for (const auto& card : student_registry()) {
    const StudentProfile& p = card.profile;
    for (const double v :
         {p.knowledge, p.extraction, p.elimination, p.chunk_distraction,
          p.trace_math_confusion, p.arithmetic, p.abstraction, p.transfer,
          p.format_reliability, p.trace_elimination_boost}) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
    EXPECT_GE(p.exam_familiarity, -1.0);
    EXPECT_LE(p.exam_familiarity, 1.0);
  }
}

// --- student model ------------------------------------------------------------------

TEST(Student, DeterministicAnswers) {
  const StudentModel model(student_card("Mistral-7B-Instruct-v0.3"));
  const McqTask task = simple_task();
  const AnswerResult a = model.answer(task);
  const AnswerResult b = model.answer(task);
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.chosen_index, b.chosen_index);
}

TEST(Student, DifferentTasksDifferentStreams) {
  const StudentModel model(student_card("OLMo-7B"));
  McqTask t1 = simple_task();
  McqTask t2 = simple_task();
  t2.id = "task_2";
  // Not asserting inequality of answers (could legitimately match), but
  // the decision stream must be keyed by id: run many ids and expect
  // variation in chosen options.
  std::set<int> chosen;
  for (int i = 0; i < 40; ++i) {
    McqTask t = simple_task();
    t.id = "task_" + std::to_string(i);
    t.has_fact = false;  // force guessing
    chosen.insert(model.answer(t).chosen_index);
  }
  EXPECT_GT(chosen.size(), 2u);
}

TEST(Student, KnowsFactIsStable) {
  const StudentModel model(student_card("Llama-3-8B-Instruct"));
  for (const auto& f : test_kb().facts()) {
    EXPECT_EQ(model.knows_fact(f.id, f.importance),
              model.knows_fact(f.id, f.importance));
  }
}

TEST(Student, KnowledgeScalesWithProfile) {
  // Count known facts for a weak vs a strong model.
  const StudentModel weak(student_card("TinyLlama-1.1B-Chat"));
  const StudentModel strong(student_card("Llama-3-8B-Instruct"));
  std::size_t weak_known = 0;
  std::size_t strong_known = 0;
  for (const auto& f : test_kb().facts()) {
    weak_known += weak.knows_fact(f.id, f.importance) ? 1 : 0;
    strong_known += strong.knows_fact(f.id, f.importance) ? 1 : 0;
  }
  EXPECT_GT(strong_known, weak_known * 3);
}

TEST(Student, ExamFamiliarityShiftsKnowledge) {
  const StudentModel model(student_card("Gemma 3 4B-IT"));  // familiarity < 0
  std::size_t base = 0;
  std::size_t exam = 0;
  for (const auto& f : test_kb().facts()) {
    base += model.knows_fact(f.id, f.importance, false) ? 1 : 0;
    exam += model.knows_fact(f.id, f.importance, true) ? 1 : 0;
  }
  EXPECT_LT(exam, base);
}

TEST(Student, ExtractsFromHighSaliencyContext) {
  const StudentModel model(student_card("Llama-3.1-8B-Instruct"));
  std::size_t correct = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    McqTask task = simple_task();
    task.id = "ctx_" + std::to_string(i);
    task.fact = test_kb().facts()[static_cast<std::size_t>(i) %
                                  test_kb().facts().size()]
                    .id;
    task.context = "relevant context";
    task.context_has_fact = true;
    task.context_saliency = 0.9;
    const AnswerResult r = model.answer(task);
    correct += (r.chosen_index == task.correct_index) ? 1 : 0;
  }
  EXPECT_GT(correct, trials * 3 / 4);
}

TEST(Student, MisleadingContextHurtsSusceptibleModel) {
  const auto run = [&](const char* name) {
    const StudentModel model(student_card(name));
    std::size_t misled_picks = 0;
    const int trials = 300;
    for (int i = 0; i < trials; ++i) {
      McqTask task = simple_task();
      task.id = "mis_" + std::to_string(i);
      task.has_fact = false;  // nothing to recall
      task.context = "near-miss context";
      task.context_misleading_options = {3};
      task.context_mislead_strength = 1.0;
      const AnswerResult r = model.answer(task);
      misled_picks += (r.chosen_index == 3) ? 1 : 0;
    }
    return misled_picks;
  };
  // OLMo (chunk_distraction 0.95) vs SmolLM3 (0.08).
  EXPECT_GT(run("OLMo-7B"), run("SmolLM3-3B") * 3);
}

TEST(Student, MathWithoutSkillFails) {
  const StudentModel model(student_card("TinyLlama-1.1B-Chat"));
  std::size_t correct = 0;
  for (int i = 0; i < 200; ++i) {
    McqTask task = simple_task();
    task.id = "math_" + std::to_string(i);
    task.math = true;
    correct += (model.answer(task).chosen_index == task.correct_index) ? 1 : 0;
  }
  EXPECT_LT(correct, 60u);
}

TEST(Student, WorkedMathInContextHelps) {
  const StudentModel model(student_card("SmolLM3-3B"));
  const auto accuracy = [&](bool worked) {
    std::size_t correct = 0;
    const int trials = 300;
    for (int i = 0; i < trials; ++i) {
      McqTask task = simple_task();
      task.id = (worked ? "w_" : "nw_") + std::to_string(i);
      task.math = true;
      task.context = "trace context";
      task.context_is_trace = true;
      task.context_has_fact = true;
      task.context_saliency = 0.5;
      task.context_has_worked_math = worked;
      correct +=
          (model.answer(task).chosen_index == task.correct_index) ? 1 : 0;
    }
    return correct;
  };
  EXPECT_GT(accuracy(true), accuracy(false) + 30);
}

TEST(Student, TraceMathConfusionCopiesStaleArithmetic) {
  const StudentModel model(student_card("Llama-3-8B-Instruct"));  // 0.85
  std::size_t wrong = 0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i) {
    McqTask task = simple_task();
    task.id = "stale_" + std::to_string(i);
    task.math = true;
    task.context = "retrieved trace for other numbers";
    task.context_is_trace = true;
    const AnswerResult r = model.answer(task);
    wrong += (r.chosen_index >= 0 && r.chosen_index != task.correct_index)
                 ? 1
                 : 0;
  }
  EXPECT_GT(wrong, trials / 2);
}

TEST(Student, AmbiguousItemsCapEveryone) {
  const StudentModel model(student_card("Llama-3.1-8B-Instruct"));
  std::size_t correct = 0;
  const int trials = 400;
  for (int i = 0; i < trials; ++i) {
    McqTask task = simple_task();
    task.id = "amb_" + std::to_string(i);
    task.ambiguity = 1.0;  // every item flawed
    correct += (model.answer(task).chosen_index == task.correct_index) ? 1 : 0;
  }
  // Flawed items coin-flip: far below this model's normal ceiling.
  EXPECT_NEAR(static_cast<double>(correct) / trials, 0.5, 0.1);
}

TEST(Student, EmptyOptionsHandled) {
  const StudentModel model(student_card("OLMo-7B"));
  McqTask task;
  task.id = "empty";
  const AnswerResult r = model.answer(task);
  EXPECT_EQ(r.chosen_index, -1);
  EXPECT_FALSE(r.text.empty());
}

// --- teacher oracle --------------------------------------------------------------------

TEST(Teacher, GeneratesValidMcqFromFactChunk) {
  const TeacherModel teacher(test_kb(), test_matcher());
  const auto draft = teacher.generate_mcq(fact_chunk(test_kb().facts()[3].id));
  ASSERT_TRUE(draft.has_value());
  EXPECT_GE(draft->options.size(), 4u);
  ASSERT_GE(draft->correct_index, 0);
  ASSERT_LT(draft->correct_index, static_cast<int>(draft->options.size()));
  std::set<std::string> unique(draft->options.begin(), draft->options.end());
  EXPECT_EQ(unique.size(), draft->options.size());
  EXPECT_FALSE(draft->stem.empty());
  EXPECT_FALSE(draft->key_principle.empty());
}

TEST(Teacher, SevenOptionsWhenPoolAllows) {
  const TeacherModel teacher(test_kb(), test_matcher());
  std::size_t seven = 0;
  std::size_t total = 0;
  for (const auto& f : test_kb().facts()) {
    const auto draft = teacher.generate_mcq(fact_chunk(f.id));
    if (!draft.has_value()) continue;
    ++total;
    seven += draft->options.size() == 7 ? 1 : 0;
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(seven * 10, total * 7);  // >70% have the full 7 options
}

TEST(Teacher, NoMcqFromFillerChunk) {
  const TeacherModel teacher(test_kb(), test_matcher());
  chunk::Chunk filler;
  filler.chunk_id = "filler_1";
  filler.text =
      "Experiments were performed in triplicate and repeated on three "
      "independent occasions. Statistical significance was assessed.";
  EXPECT_FALSE(teacher.generate_mcq(filler).has_value());
}

TEST(Teacher, QualityScoresBounded) {
  const TeacherModel teacher(test_kb(), test_matcher());
  for (const auto& f : test_kb().facts()) {
    const chunk::Chunk c = fact_chunk(f.id);
    const auto draft = teacher.generate_mcq(c);
    if (!draft.has_value()) continue;
    const ScoreCheck q = teacher.quality_check(*draft, c);
    EXPECT_GE(q.score, 1.0);
    EXPECT_LE(q.score, 10.0);
  }
}

TEST(Teacher, RelevanceSeparatesFactFromFiller) {
  const TeacherModel teacher(test_kb(), test_matcher());
  const chunk::Chunk factual = fact_chunk(test_kb().facts()[5].id);
  chunk::Chunk filler;
  filler.chunk_id = "filler_2";
  filler.text = "Control cultures were sham-irradiated and handled "
                "identically in all other respects.";
  EXPECT_GT(teacher.relevance_check(factual).score,
            teacher.relevance_check(filler).score);
}

TEST(Teacher, DamagedSourceLowersQuality) {
  const TeacherModel teacher(test_kb(), test_matcher());
  const chunk::Chunk clean = fact_chunk(test_kb().facts()[1].id);
  chunk::Chunk damaged = clean;
  damaged.text += " ~HDR~ leftover header";
  const auto draft = teacher.generate_mcq(clean);
  ASSERT_TRUE(draft.has_value());
  EXPECT_GT(teacher.quality_check(*draft, clean).score,
            teacher.quality_check(*draft, damaged).score);
}

TEST(Teacher, AnswersNearCeiling) {
  const TeacherModel teacher(test_kb(), test_matcher());
  std::size_t correct = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    McqTask task = simple_task();
    task.id = "teacher_" + std::to_string(i);
    correct += (teacher.answer(task).chosen_index == task.correct_index) ? 1 : 0;
  }
  EXPECT_GT(correct, trials * 9 / 10);
}

TEST(Teacher, ExplainFactMentionsSubject) {
  const TeacherModel teacher(test_kb(), test_matcher());
  const auto& f = test_kb().facts()[2];
  const std::string expl = teacher.explain_fact(f.id);
  EXPECT_NE(expl.find(test_kb().entity(f.subject).name), std::string::npos);
}

// --- n-gram backend ---------------------------------------------------------------------

std::string training_text() {
  std::string text;
  const auto& kb = test_kb();
  for (const auto& f : kb.facts()) {
    for (int v = 0; v < corpus::statement_variant_count(f); ++v) {
      text += corpus::realize_statement(kb, f, v);
      text += ' ';
    }
  }
  return text;
}

TEST(NgramLm, TrainsAndScores) {
  const NgramLm lm = NgramLm::train(training_text(), NgramLmConfig{});
  EXPECT_GT(lm.vocab_size(), 50u);
  EXPECT_GT(lm.trigram_count(), 100u);
  // In-domain text scores higher than shuffled noise.
  const double in_domain =
      lm.log_prob("radiation exposure activates apoptosis");
  const double noise = lm.log_prob("zqx vbn wkj pqr xyz");
  EXPECT_GT(in_domain, noise);
}

TEST(NgramLm, SmallerCorpusFractionWeakerModel) {
  const std::string text = training_text();
  NgramLmConfig big_cfg;
  NgramLmConfig small_cfg;
  small_cfg.corpus_fraction = 0.05;
  const NgramLm big = NgramLm::train(text, big_cfg);
  const NgramLm small = NgramLm::train(text, small_cfg);
  EXPECT_GT(big.trigram_count(), small.trigram_count());
}

TEST(NgramLm, AnswerPicksSeenContinuation) {
  // Train heavily on one association; the LM should rank it.
  std::string text;
  for (int i = 0; i < 60; ++i) {
    text += "the correct treatment is cisplatin for this disease. ";
  }
  text += "other words appear here too for vocabulary coverage. ";
  const NgramLm lm = NgramLm::train(text, NgramLmConfig{});
  McqTask task;
  task.id = "lm_task";
  task.stem = "the correct treatment is";
  task.options = {"wortmannin", "cisplatin", "caffeine"};
  task.correct_index = 1;
  const AnswerResult r = lm.answer(task);
  EXPECT_EQ(r.chosen_index, 1);
}

TEST(NgramLm, EmptyOptionsHandled) {
  const NgramLm lm = NgramLm::train("tiny corpus", NgramLmConfig{});
  McqTask task;
  task.id = "none";
  EXPECT_EQ(lm.answer(task).chosen_index, -1);
}

}  // namespace
}  // namespace mcqa::llm
