// Tests for the extension features: IVF/HNSW serialization, trace
// grading, JSONL helpers, CLI-facing artifact round trips.

#include <gtest/gtest.h>

#include "index/vector_index.hpp"
#include "json/json.hpp"
#include "qgen/mcq_record.hpp"
#include "trace/trace_grading.hpp"
#include "trace/trace_record.hpp"
#include "util/rng.hpp"

namespace mcqa {
namespace {

std::vector<embed::Vector> random_unit_vectors(std::size_t n, std::size_t dim,
                                               std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<embed::Vector> out;
  for (std::size_t i = 0; i < n; ++i) {
    embed::Vector v(dim);
    for (auto& x : v) x = static_cast<float>(rng.normal());
    embed::normalize(v);
    out.push_back(std::move(v));
  }
  return out;
}

// --- index serialization --------------------------------------------------------

TEST(IvfIo, SaveLoadPreservesSearchResults) {
  constexpr std::size_t kDim = 16;
  const auto data = random_unit_vectors(400, kDim, 71);
  index::IvfConfig cfg;
  cfg.nlist = 16;
  cfg.nprobe = 4;
  index::IvfIndex idx(kDim, cfg);
  for (const auto& v : data) idx.add(v);
  idx.build();

  const index::IvfIndex loaded = index::IvfIndex::load(idx.save());
  EXPECT_EQ(loaded.size(), idx.size());
  EXPECT_EQ(loaded.nlist(), idx.nlist());
  const auto q = random_unit_vectors(1, kDim, 72)[0];
  const auto a = idx.search(q, 8);
  const auto b = loaded.search(q, 8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].row, b[i].row);
    EXPECT_FLOAT_EQ(a[i].score, b[i].score);
  }
}

TEST(IvfIo, SaveBeforeBuildThrows) {
  index::IvfIndex idx(8);
  idx.add(embed::Vector(8, 0.5f));
  EXPECT_THROW(idx.save(), std::logic_error);
}

TEST(IvfIo, LoadRejectsGarbage) {
  EXPECT_THROW(index::IvfIndex::load("garbage"), std::runtime_error);
  EXPECT_THROW(index::IvfIndex::load("ivfidx1\nshort"), std::runtime_error);
}

TEST(HnswIo, SaveLoadPreservesSearchResults) {
  constexpr std::size_t kDim = 16;
  const auto data = random_unit_vectors(400, kDim, 73);
  index::HnswIndex idx(kDim);
  for (const auto& v : data) idx.add(v);

  const index::HnswIndex loaded = index::HnswIndex::load(idx.save());
  EXPECT_EQ(loaded.size(), idx.size());
  const auto q = random_unit_vectors(1, kDim, 74)[0];
  const auto a = idx.search(q, 8);
  const auto b = loaded.search(q, 8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].row, b[i].row);
  }
}

TEST(HnswIo, EmptyIndexRoundTrips) {
  index::HnswIndex idx(8);
  const index::HnswIndex loaded = index::HnswIndex::load(idx.save());
  EXPECT_EQ(loaded.size(), 0u);
  EXPECT_TRUE(loaded.search(embed::Vector(8, 0.1f), 3).empty());
}

TEST(HnswIo, LoadRejectsCorruptLinks) {
  index::HnswIndex idx(4);
  idx.add(embed::Vector{1.0f, 0.0f, 0.0f, 0.0f});
  idx.add(embed::Vector{0.0f, 1.0f, 0.0f, 0.0f});
  std::string blob = idx.save();
  // Flip every byte of the tail section to produce invalid structure.
  for (std::size_t i = blob.size() - 8; i < blob.size(); ++i) {
    blob[i] = static_cast<char>(0xff);
  }
  EXPECT_THROW(index::HnswIndex::load(blob), std::runtime_error);
}

// --- trace grading ----------------------------------------------------------------

trace::TraceRecord graded_fixture(const std::string& predicted) {
  trace::TraceRecord t;
  t.trace_id = "t_test";
  t.question = "Which agent?";
  t.options = {"cisplatin", "amifostine", "caffeine"};
  t.correct_answer_index = 0;
  t.correct_answer = "cisplatin";
  t.mode = trace::TraceMode::kEfficient;
  t.prediction.predicted_answer = predicted;
  return t;
}

TEST(TraceGrading, CorrectPredictionGraded) {
  trace::TraceRecord t = graded_fixture("cisplatin");
  trace::grade_trace(t);
  ASSERT_TRUE(t.has_grading);
  EXPECT_TRUE(t.grading.is_correct);
  EXPECT_EQ(t.grading.extracted_option_number, 1);
  EXPECT_EQ(t.grading.correct_option_number, 1);
}

TEST(TraceGrading, WrongPredictionGraded) {
  trace::TraceRecord t = graded_fixture("caffeine");
  trace::grade_trace(t);
  EXPECT_FALSE(t.grading.is_correct);
  EXPECT_EQ(t.grading.extracted_option_number, 3);
}

TEST(TraceGrading, FuzzyPredictionMatches) {
  trace::TraceRecord t = graded_fixture("Cisplatin.");
  trace::grade_trace(t);
  EXPECT_TRUE(t.grading.is_correct);
}

TEST(TraceGrading, UnmatchablePrediction) {
  trace::TraceRecord t = graded_fixture("something entirely different");
  trace::grade_trace(t);
  EXPECT_FALSE(t.grading.is_correct);
  EXPECT_EQ(t.grading.extracted_option_number, -1);
}

TEST(TraceGrading, GradeAllAndFilter) {
  std::vector<trace::TraceRecord> traces;
  traces.push_back(graded_fixture("cisplatin"));
  traces.push_back(graded_fixture("caffeine"));
  traces.push_back(graded_fixture("cisplatin"));
  const trace::TraceGradingStats stats = trace::grade_all(traces);
  EXPECT_EQ(stats.graded, 3u);
  EXPECT_EQ(stats.correct, 2u);
  EXPECT_NEAR(stats.accuracy(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(trace::filter_incorrect(traces), 1u);
  EXPECT_EQ(traces.size(), 2u);
  for (const auto& t : traces) EXPECT_TRUE(t.grading.is_correct);
}

TEST(TraceGrading, FilterLeavesUngradedAlone) {
  std::vector<trace::TraceRecord> traces;
  traces.push_back(graded_fixture("caffeine"));  // ungraded
  EXPECT_EQ(trace::filter_incorrect(traces), 0u);
  EXPECT_EQ(traces.size(), 1u);
}

// --- JSONL ------------------------------------------------------------------------

TEST(Jsonl, RoundTrip) {
  std::vector<json::Value> docs;
  for (int i = 0; i < 5; ++i) {
    json::Value v = json::Value::object();
    v["i"] = i;
    v["text"] = "line " + std::to_string(i);
    docs.push_back(std::move(v));
  }
  const std::string blob = json::dump_jsonl(docs);
  const auto back = json::parse_jsonl(blob);
  ASSERT_EQ(back.size(), docs.size());
  for (std::size_t i = 0; i < docs.size(); ++i) {
    EXPECT_TRUE(back[i] == docs[i]);
  }
}

TEST(Jsonl, SkipsBlankLines) {
  const auto docs = json::parse_jsonl("{\"a\":1}\n\n  \n{\"b\":2}\n");
  ASSERT_EQ(docs.size(), 2u);
  EXPECT_EQ(docs[1].at("b").as_int(), 2);
}

TEST(Jsonl, EmptyInput) {
  EXPECT_TRUE(json::parse_jsonl("").empty());
  EXPECT_TRUE(json::parse_jsonl("\n\n").empty());
}

TEST(Jsonl, BadLineThrows) {
  EXPECT_THROW(json::parse_jsonl("{\"ok\":1}\nnot json\n"), json::ParseError);
}

TEST(Jsonl, McqRecordArtifactRoundTrip) {
  // The exact artifact flow the CLI uses: records -> jsonl -> records.
  std::vector<json::Value> docs;
  for (int i = 0; i < 3; ++i) {
    qgen::McqRecord r;
    r.record_id = "q_" + std::to_string(i);
    r.stem = "Stem " + std::to_string(i) + "?";
    r.options = {"a", "b", "c"};
    r.correct_index = i % 3;
    r.answer = r.options[static_cast<std::size_t>(r.correct_index)];
    r.question = qgen::McqRecord::render_question(r.stem, r.options);
    docs.push_back(r.to_json());
  }
  const auto back = json::parse_jsonl(json::dump_jsonl(docs));
  ASSERT_EQ(back.size(), 3u);
  const qgen::McqRecord r1 = qgen::McqRecord::from_json(back[1]);
  EXPECT_EQ(r1.record_id, "q_1");
  EXPECT_EQ(r1.correct_index, 1);
}

}  // namespace
}  // namespace mcqa
