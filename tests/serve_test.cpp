// Unit tests for the serving layer: sharded stores (exact scatter-gather
// merge), the query router, micro-batching, admission control, the
// deterministic engine, the live tier (replicas, hedged dispatch,
// priority lanes, shard heat), and server metrics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <iterator>
#include <set>

#include "corpus/fact_matcher.hpp"
#include "corpus/realization.hpp"
#include "embed/hashed_embedder.hpp"
#include "index/vector_store.hpp"
#include "llm/model_spec.hpp"
#include "parallel/thread_pool.hpp"
#include "rag/rag_pipeline.hpp"
#include "serve/engine.hpp"
#include "serve/metrics.hpp"
#include "serve/sharded_store.hpp"

namespace mcqa::serve {
namespace {

const corpus::KnowledgeBase& test_kb() {
  static const corpus::KnowledgeBase kb = corpus::KnowledgeBase::generate(
      corpus::KbConfig{.facts_per_topic = 14, .seed = 51, .math_fraction = 0.4});
  return kb;
}

void expect_same_hits(const std::vector<index::Hit>& got,
                      const std::vector<index::Hit>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << "rank " << i;
    EXPECT_EQ(got[i].text, want[i].text) << "rank " << i;
    EXPECT_EQ(got[i].score, want[i].score) << "rank " << i;  // bitwise
  }
}

void expect_same_task(const llm::McqTask& got, const llm::McqTask& want) {
  EXPECT_EQ(got.id, want.id);
  EXPECT_EQ(got.stem, want.stem);
  EXPECT_EQ(got.options, want.options);
  EXPECT_EQ(got.context, want.context);
  EXPECT_EQ(got.correct_index, want.correct_index);
  EXPECT_EQ(got.fact, want.fact);
  EXPECT_EQ(got.has_fact, want.has_fact);
  EXPECT_EQ(got.math, want.math);
  EXPECT_EQ(got.fact_importance, want.fact_importance);
  EXPECT_EQ(got.ambiguity, want.ambiguity);
  EXPECT_EQ(got.exam_item, want.exam_item);
  EXPECT_EQ(got.context_is_trace, want.context_is_trace);
  EXPECT_EQ(got.context_is_terse, want.context_is_terse);
  EXPECT_EQ(got.context_has_fact, want.context_has_fact);
  EXPECT_EQ(got.context_saliency, want.context_saliency);
  EXPECT_EQ(got.context_has_elimination, want.context_has_elimination);
  EXPECT_EQ(got.context_has_worked_math, want.context_has_worked_math);
  EXPECT_EQ(got.context_misleading_options, want.context_misleading_options);
  EXPECT_EQ(got.context_mislead_strength, want.context_mislead_strength);
}

/// A retrieval world big enough that every shard count in {1,2,4,8}
/// leaves several rows per shard, plus a few records to serve.
class ServeFixture : public ::testing::Test {
 protected:
  ServeFixture()
      : matcher_(test_kb()),
        chunk_store_(embedder_),
        trace_store_d_(embedder_),
        trace_store_f_(embedder_),
        trace_store_e_(embedder_) {
    const auto& kb = test_kb();

    // Records: realized questions over distinct facts.
    util::Rng rng(7);
    for (std::size_t f = 0; f < 4; ++f) {
      const corpus::Fact& probed = kb.facts()[2 + f * 3];
      const auto real = corpus::realize_question(kb, probed, rng);
      qgen::McqRecord record;
      record.record_id = "q_serve_" + std::to_string(f);
      record.stem = real.stem;
      record.options.push_back(real.correct);
      for (const auto& d : real.distractors) record.options.push_back(d);
      record.correct_index = 0;
      record.answer = real.correct;
      record.question =
          qgen::McqRecord::render_question(record.stem, record.options);
      record.fact = probed.id;
      record.math = real.math;
      records_.push_back(std::move(record));
    }

    // Chunk store: one statement chunk per fact (~40 rows).
    const std::size_t rows = std::min<std::size_t>(40, kb.facts().size());
    for (std::size_t i = 0; i < rows; ++i) {
      chunk_store_.add("chunk_" + std::to_string(i),
                       corpus::realize_statement(kb, kb.facts()[i], 0));
    }
    chunk_store_.build();

    // Trace stores: one trace per record per mode, plus filler traces so
    // shards stay populated.
    for (const auto& record : records_) {
      const std::string principle = "Key principle relevant to " + record.stem;
      trace_store_d_.add("t_d_" + record.record_id,
                         record.question + "\nOption 1: aligns with " +
                             principle);
      trace_store_f_.add("t_f_" + record.record_id,
                         record.question + "\nKey principle: " + principle);
      trace_store_e_.add("t_e_" + record.record_id,
                         record.question + "\n" + principle);
    }
    for (std::size_t i = 0; i < 12; ++i) {
      const std::string filler =
          corpus::realize_statement(kb, kb.facts()[i + 4], 0);
      trace_store_d_.add("t_d_fill_" + std::to_string(i), filler);
      trace_store_f_.add("t_f_fill_" + std::to_string(i), filler);
      trace_store_e_.add("t_e_fill_" + std::to_string(i), filler);
    }
    trace_store_d_.build();
    trace_store_f_.build();
    trace_store_e_.build();

    stores_.chunks = &chunk_store_;
    stores_.traces[0] = &trace_store_d_;
    stores_.traces[1] = &trace_store_f_;
    stores_.traces[2] = &trace_store_e_;

    spec_ = llm::student_card("Llama-3.1-8B-Instruct").spec;
  }

  rag::RagPipeline make_pipeline(rag::RagConfig cfg = {}) const {
    return rag::RagPipeline(test_kb(), matcher_, stores_, cfg);
  }

  embed::HashedNGramEmbedder embedder_;
  corpus::FactMatcher matcher_;
  index::VectorStore chunk_store_;
  index::VectorStore trace_store_d_;
  index::VectorStore trace_store_f_;
  index::VectorStore trace_store_e_;
  rag::RetrievalStores stores_;
  std::vector<qgen::McqRecord> records_;
  llm::ModelSpec spec_;
};

// --- sharded store -----------------------------------------------------------

TEST_F(ServeFixture, ShardedQueryMatchesUnshardedBitwise) {
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    const ShardedStore sharded(chunk_store_, shards);
    EXPECT_EQ(sharded.shard_count(), shards);
    for (const auto& record : records_) {
      for (const std::size_t k : {1u, 3u, 10u, 64u}) {
        expect_same_hits(sharded.query(record.stem, k),
                         chunk_store_.query(record.stem, k));
      }
    }
  }
}

TEST_F(ServeFixture, ShardedTraceStoreMatchesUnsharded) {
  for (const std::size_t shards : {2u, 4u}) {
    const ShardedStore sharded(trace_store_f_, shards);
    for (const auto& record : records_) {
      expect_same_hits(sharded.query(record.question, 3),
                       trace_store_f_.query(record.question, 3));
    }
  }
}

TEST_F(ServeFixture, QuantizedShardsMatchFlatShardsBitwise) {
  // Quantized shards feed exact fp16 rerank scores into the same
  // scatter-gather merge, and each shard is far smaller than the
  // candidate floor, so results must be bit-identical to flat shards.
  for (const index::IndexKind kind :
       {index::IndexKind::kSq8, index::IndexKind::kIvfPq}) {
    for (const std::size_t shards : {1u, 2u, 4u}) {
      const ShardedStore flat(chunk_store_, shards);
      const ShardedStore quantized(chunk_store_, shards, kind);
      EXPECT_EQ(quantized.shard_kind(), kind);
      for (const auto& record : records_) {
        for (const std::size_t k : {1u, 3u, 10u}) {
          expect_same_hits(quantized.query(record.stem, k),
                           flat.query(record.stem, k));
        }
      }
    }
  }
}

TEST_F(ServeFixture, ShardedStoreRejectsGraphShardKinds) {
  EXPECT_THROW(ShardedStore(chunk_store_, 2, index::IndexKind::kIvf),
               std::invalid_argument);
  EXPECT_THROW(ShardedStore(chunk_store_, 2, index::IndexKind::kHnsw),
               std::invalid_argument);
}

TEST_F(ServeFixture, ShardPartitionCoversEveryRowOnce) {
  const ShardedStore sharded(chunk_store_, 4);
  std::size_t total = 0;
  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    total += sharded.shard_size(s);
  }
  EXPECT_EQ(total, chunk_store_.size());
  // The partition function is the stable id hash.
  for (std::size_t row = 0; row < chunk_store_.size(); ++row) {
    EXPECT_LT(ShardedStore::shard_of(chunk_store_.id_of(row), 4), 4u);
  }
  EXPECT_EQ(ShardedStore::shard_of("anything", 1), 0u);
}

TEST_F(ServeFixture, RouterRoutesConditionsAndLanes) {
  const QueryRouter router(stores_, 4);
  EXPECT_EQ(router.store_for(rag::Condition::kBaseline), nullptr);
  ASSERT_NE(router.store_for(rag::Condition::kChunks), nullptr);
  EXPECT_EQ(&router.store_for(rag::Condition::kChunks)->base(), &chunk_store_);
  EXPECT_EQ(&router.store_for(rag::Condition::kTraceFocused)->base(),
            &trace_store_f_);
  EXPECT_TRUE(router.query(rag::Condition::kBaseline, "x", 3).empty());
  for (int i = 0; i < 32; ++i) {
    EXPECT_LT(router.lane_of("rq_" + std::to_string(i)), 4u);
  }
}

// --- micro-batcher and admission --------------------------------------------

TEST(MicroBatcherTest, SizeAndCutoffSemantics) {
  MicroBatcher batcher(3, 5.0);
  EXPECT_TRUE(std::isinf(batcher.cutoff_at()));
  batcher.push({0, 0, 10.0});
  batcher.push({1, 0, 11.0});
  EXPECT_FALSE(batcher.size_ready());
  EXPECT_EQ(batcher.cutoff_at(), 15.0);  // oldest + cutoff
  batcher.push({2, 0, 12.0});
  EXPECT_TRUE(batcher.size_ready());
  batcher.push({3, 0, 12.5});
  const auto batch = batcher.take_batch();  // oldest three only
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].req, 0u);
  EXPECT_EQ(batch[2].req, 2u);
  EXPECT_EQ(batcher.waiting(), 1u);
  EXPECT_EQ(batcher.cutoff_at(), 17.5);
}

TEST(AdmissionControllerTest, ShedsAtCapacityWithExactCounts) {
  AdmissionController admission(2);
  EXPECT_TRUE(admission.try_admit(0));
  EXPECT_TRUE(admission.try_admit(1));
  EXPECT_FALSE(admission.try_admit(2));
  EXPECT_FALSE(admission.try_admit(5));
  EXPECT_EQ(admission.admitted(), 2u);
  EXPECT_EQ(admission.shed(), 2u);
  EXPECT_EQ(admission.capacity(), 2u);
}

// --- workload ----------------------------------------------------------------

TEST(WorkloadTest, SynthWorkloadIsDeterministicAndNondecreasing) {
  WorkloadConfig cfg;
  cfg.requests = 64;
  cfg.offered_qps = 500.0;
  const auto a = synth_workload(cfg, 8);
  const auto b = synth_workload(cfg, 8);
  ASSERT_EQ(a.size(), 64u);
  std::set<int> conditions;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].request_id, b[i].request_id);
    EXPECT_EQ(a[i].record, b[i].record);
    EXPECT_EQ(a[i].condition, b[i].condition);
    EXPECT_EQ(a[i].arrival_ms, b[i].arrival_ms);  // bitwise
    EXPECT_LT(a[i].record, 8u);
    if (i > 0) {
      EXPECT_GE(a[i].arrival_ms, a[i - 1].arrival_ms);
    }
    conditions.insert(static_cast<int>(a[i].condition));
  }
  EXPECT_GT(conditions.size(), 1u);  // the mix actually mixes
}

// --- engine ------------------------------------------------------------------

ServeConfig relaxed_config() {
  ServeConfig cfg;
  cfg.shards = 4;
  cfg.queue_capacity = 512;
  cfg.deadline_ms = 1e7;  // effectively no deadline
  cfg.transient_failure_rate = 0.0;
  return cfg;
}

TEST_F(ServeFixture, ServedTasksMatchPrepareFieldwise) {
  const rag::RagPipeline rag = make_pipeline();
  const QueryEngine engine(rag, stores_, spec_, relaxed_config());
  WorkloadConfig wl;
  wl.requests = 40;
  wl.offered_qps = 200.0;
  const auto requests = synth_workload(wl, records_.size());
  ServerMetrics metrics;
  const auto results = engine.serve(records_, requests, &metrics);
  ASSERT_EQ(results.size(), requests.size());
  EXPECT_EQ(metrics.completed, requests.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_EQ(results[i].status, RequestStatus::kOk) << i;
    expect_same_task(results[i].task,
                     rag.prepare(records_[requests[i].record],
                                 requests[i].condition, spec_));
  }
}

TEST_F(ServeFixture, ServeIsDeterministicAcrossRunsAndThreadCounts) {
  const rag::RagPipeline rag = make_pipeline();
  ServeConfig cfg = relaxed_config();
  cfg.deadline_ms = 30.0;  // tight enough that some requests expire
  cfg.transient_failure_rate = 0.15;
  cfg.max_retries = 2;
  const QueryEngine engine(rag, stores_, spec_, cfg);
  WorkloadConfig wl;
  wl.requests = 96;
  wl.offered_qps = 2500.0;
  const auto requests = synth_workload(wl, records_.size());

  parallel::ThreadPool pool_1(1);
  parallel::ThreadPool pool_4(4);
  ServerMetrics m_a, m_b;
  const auto a = engine.serve(records_, requests, pool_1, &m_a);
  const auto b = engine.serve(records_, requests, pool_4, &m_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status, b[i].status) << i;
    EXPECT_EQ(a[i].attempts, b[i].attempts) << i;
    EXPECT_EQ(a[i].lane, b[i].lane) << i;
    EXPECT_EQ(a[i].latency_ms, b[i].latency_ms) << i;  // bitwise
    EXPECT_EQ(a[i].enqueue_wait_ms, b[i].enqueue_wait_ms) << i;
    if (a[i].status == RequestStatus::kOk) {
      expect_same_task(a[i].task, b[i].task);
    }
  }
  EXPECT_EQ(m_a.completed, m_b.completed);
  EXPECT_EQ(m_a.rejected, m_b.rejected);
  EXPECT_EQ(m_a.expired, m_b.expired);
  EXPECT_EQ(m_a.failed, m_b.failed);
  EXPECT_EQ(m_a.retries, m_b.retries);
  EXPECT_EQ(m_a.batches, m_b.batches);
  EXPECT_EQ(m_a.lane_serviced, m_b.lane_serviced);
  EXPECT_EQ(m_a.latency.p99(), m_b.latency.p99());  // bitwise
  EXPECT_EQ(m_a.makespan_ms, m_b.makespan_ms);
}

TEST_F(ServeFixture, EveryRequestGetsExactlyOneTerminalStatus) {
  const rag::RagPipeline rag = make_pipeline();
  ServeConfig cfg;
  cfg.queue_capacity = 6;
  cfg.workers = 1;
  cfg.batch_max = 4;
  cfg.deadline_ms = 40.0;
  cfg.transient_failure_rate = 0.3;
  cfg.max_retries = 1;
  const QueryEngine engine(rag, stores_, spec_, cfg);
  WorkloadConfig wl;
  wl.requests = 200;
  wl.offered_qps = 20000.0;  // far past capacity
  const auto requests = synth_workload(wl, records_.size());
  ServerMetrics metrics;
  const auto results = engine.serve(records_, requests, &metrics);

  std::size_t ok = 0, rejected = 0, expired = 0, failed = 0;
  for (const auto& r : results) {
    switch (r.status) {
      case RequestStatus::kOk: ++ok; break;
      case RequestStatus::kRejected: ++rejected; break;
      case RequestStatus::kExpired: ++expired; break;
      case RequestStatus::kFailed: ++failed; break;
    }
  }
  EXPECT_EQ(metrics.offered, 200u);
  EXPECT_EQ(metrics.completed, ok);
  EXPECT_EQ(metrics.rejected, rejected);
  EXPECT_EQ(metrics.expired, expired);
  EXPECT_EQ(metrics.failed, failed);
  EXPECT_EQ(ok + rejected + expired + failed, 200u);
  EXPECT_GT(rejected, 0u);  // overload must shed
}

TEST_F(ServeFixture, NoSheddingUnderLightLoad) {
  const rag::RagPipeline rag = make_pipeline();
  const QueryEngine engine(rag, stores_, spec_, relaxed_config());
  WorkloadConfig wl;
  wl.requests = 32;
  wl.offered_qps = 50.0;
  ServerMetrics metrics;
  engine.serve(records_, synth_workload(wl, records_.size()), &metrics);
  EXPECT_EQ(metrics.rejected, 0u);
  EXPECT_EQ(metrics.expired, 0u);
  EXPECT_EQ(metrics.completed, 32u);
}

TEST_F(ServeFixture, TightDeadlineYieldsTypedExpiry) {
  const rag::RagPipeline rag = make_pipeline();
  ServeConfig cfg = relaxed_config();
  cfg.deadline_ms = 0.5;      // below any service time
  cfg.batch_cutoff_ms = 2.0;  // so waits alone can blow the deadline
  const QueryEngine engine(rag, stores_, spec_, cfg);
  WorkloadConfig wl;
  wl.requests = 24;
  wl.offered_qps = 100.0;
  ServerMetrics metrics;
  const auto results =
      engine.serve(records_, synth_workload(wl, records_.size()), &metrics);
  EXPECT_GT(metrics.expired, 0u);
  for (const auto& r : results) {
    EXPECT_NE(r.status, RequestStatus::kRejected);
  }
}

TEST_F(ServeFixture, RetryBudgetIsBoundedAndTyped) {
  const rag::RagPipeline rag = make_pipeline();
  ServeConfig cfg = relaxed_config();
  cfg.transient_failure_rate = 1.0;  // every attempt fails
  cfg.max_retries = 2;
  const QueryEngine engine(rag, stores_, spec_, cfg);
  WorkloadConfig wl;
  wl.requests = 16;
  wl.offered_qps = 100.0;
  ServerMetrics metrics;
  const auto results =
      engine.serve(records_, synth_workload(wl, records_.size()), &metrics);
  for (const auto& r : results) {
    EXPECT_EQ(r.status, RequestStatus::kFailed);
    EXPECT_EQ(r.attempts, 3u);  // initial + 2 retries
  }
  EXPECT_EQ(metrics.failed, 16u);
  EXPECT_EQ(metrics.retries, 32u);
  EXPECT_EQ(metrics.serviced, 48u);
}

TEST_F(ServeFixture, RetriesRecoverWhenFailuresAreTransient) {
  const rag::RagPipeline rag = make_pipeline();
  ServeConfig cfg = relaxed_config();
  cfg.transient_failure_rate = 0.4;
  cfg.max_retries = 4;
  const QueryEngine engine(rag, stores_, spec_, cfg);
  WorkloadConfig wl;
  wl.requests = 48;
  wl.offered_qps = 200.0;
  ServerMetrics metrics;
  const auto results =
      engine.serve(records_, synth_workload(wl, records_.size()), &metrics);
  EXPECT_GT(metrics.retries, 0u);
  std::size_t multi_attempt_ok = 0;
  for (const auto& r : results) {
    if (r.status == RequestStatus::kOk && r.attempts > 1) ++multi_attempt_ok;
  }
  EXPECT_GT(multi_attempt_ok, 0u);
}

TEST_F(ServeFixture, StageCostsAreStablePerRequestId) {
  const rag::RagPipeline rag = make_pipeline();
  const QueryEngine engine(rag, stores_, spec_, relaxed_config());
  QueryRequest req;
  req.request_id = "rq_42";
  req.condition = rag::Condition::kChunks;
  EXPECT_EQ(engine.embed_cost_ms(req), engine.embed_cost_ms(req));
  EXPECT_EQ(engine.retrieve_cost_ms(req), engine.retrieve_cost_ms(req));
  EXPECT_EQ(engine.assemble_cost_ms(req), engine.assemble_cost_ms(req));
  EXPECT_GE(engine.embed_cost_ms(req), engine.config().embed_base_ms);
  // Baseline requests skip retrieval entirely.
  req.condition = rag::Condition::kBaseline;
  EXPECT_EQ(engine.retrieve_cost_ms(req), 0.0);
}

TEST_F(ServeFixture, RejectsUnsortedArrivals) {
  const rag::RagPipeline rag = make_pipeline();
  const QueryEngine engine(rag, stores_, spec_, relaxed_config());
  std::vector<QueryRequest> requests(2);
  requests[0].request_id = "rq_0";
  requests[0].arrival_ms = 5.0;
  requests[1].request_id = "rq_1";
  requests[1].arrival_ms = 1.0;
  EXPECT_THROW(engine.serve(records_, requests), std::invalid_argument);
}

// --- live tier: workload classes, hedging, lanes, heat -----------------------

TEST(WorkloadTest, ClassAndHotDrawsLeaveBaseStreamsUntouched) {
  WorkloadConfig base;
  base.requests = 64;
  base.offered_qps = 500.0;
  WorkloadConfig mixed = base;
  mixed.interactive_fraction = 0.5;
  mixed.hot_fraction = 0.6;
  const auto a = synth_workload(base, 8);
  const auto b = synth_workload(mixed, 8);
  ASSERT_EQ(a.size(), b.size());
  std::size_t batch_class = 0, hot = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // The class/hot draws ride independent streams: ids, arrivals and
    // conditions must be bit-identical to the all-default workload.
    EXPECT_EQ(a[i].request_id, b[i].request_id);
    EXPECT_EQ(a[i].arrival_ms, b[i].arrival_ms);  // bitwise
    EXPECT_EQ(a[i].condition, b[i].condition);
    EXPECT_EQ(a[i].klass, RequestClass::kInteractive);
    if (b[i].klass == RequestClass::kBatch) ++batch_class;
    if (b[i].record != a[i].record) {
      EXPECT_EQ(b[i].record, 0u);  // redirection only ever targets the hot key
    }
    if (b[i].record == 0) ++hot;
  }
  EXPECT_GT(batch_class, 0u);
  EXPECT_LT(batch_class, a.size());
  EXPECT_GT(hot, a.size() / 4);  // the skew actually lands
}

TEST_F(ServeFixture, SaltedLaneZeroMatchesLegacyAndStaysInRange) {
  const QueryRouter router(stores_, 4);
  bool moved = false;
  for (int i = 0; i < 64; ++i) {
    const std::string id = "rq_" + std::to_string(i);
    EXPECT_EQ(router.lane_of(id, 0), router.lane_of(id));
    const std::size_t salted = router.lane_of(id, 1);
    EXPECT_LT(salted, 4u);
    if (salted != router.lane_of(id)) moved = true;
  }
  EXPECT_TRUE(moved);  // a salt bump actually re-keys the partition
}

ServeConfig live_config() {
  ServeConfig cfg = relaxed_config();
  cfg.workers = 2;
  cfg.replicas = 3;
  cfg.hedge = true;
  cfg.replica_slow_rate = 0.25;
  cfg.replica_slow_factor = 8.0;
  cfg.replica_failure_rate = 0.1;
  cfg.reserved_interactive_slots = 1;
  cfg.max_retries = 1;
  return cfg;
}

TEST_F(ServeFixture, HedgedServeIsDeterministicAcrossThreadCounts) {
  const rag::RagPipeline rag = make_pipeline();
  const QueryEngine engine(rag, stores_, spec_, live_config());
  WorkloadConfig wl;
  wl.requests = 128;
  wl.offered_qps = 1500.0;
  wl.interactive_fraction = 0.6;  // both lanes live under hedging
  const auto requests = synth_workload(wl, records_.size());

  parallel::ThreadPool pool_1(1);
  parallel::ThreadPool pool_2(2);
  parallel::ThreadPool pool_8(8);
  ServerMetrics m_1, m_2, m_8;
  const auto a = engine.serve(records_, requests, pool_1, &m_1);
  const auto b = engine.serve(records_, requests, pool_2, &m_2);
  const auto c = engine.serve(records_, requests, pool_8, &m_8);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), c.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (const auto* other : {&b, &c}) {
      const QueryResult& o = (*other)[i];
      EXPECT_EQ(a[i].status, o.status) << i;
      EXPECT_EQ(a[i].attempts, o.attempts) << i;
      EXPECT_EQ(a[i].klass, o.klass) << i;
      EXPECT_EQ(a[i].replica, o.replica) << i;
      EXPECT_EQ(a[i].hedged, o.hedged) << i;
      EXPECT_EQ(a[i].latency_ms, o.latency_ms) << i;  // bitwise
      EXPECT_EQ(a[i].enqueue_wait_ms, o.enqueue_wait_ms) << i;
      if (a[i].status == RequestStatus::kOk) expect_same_task(a[i].task, o.task);
    }
  }
  for (const ServerMetrics* m : {&m_2, &m_8}) {
    EXPECT_EQ(m_1.hedges, m->hedges);
    EXPECT_EQ(m_1.hedge_wins, m->hedge_wins);
    EXPECT_EQ(m_1.hedge_cancels, m->hedge_cancels);
    EXPECT_EQ(m_1.hedge_failed, m->hedge_failed);
    EXPECT_EQ(m_1.replica_slow, m->replica_slow);
    EXPECT_EQ(m_1.replica_failures, m->replica_failures);
    EXPECT_EQ(m_1.replica_serviced, m->replica_serviced);
    EXPECT_EQ(m_1.latency.p999(), m->latency.p999());  // bitwise
    EXPECT_EQ(m_1.makespan_ms, m->makespan_ms);
  }
  // Hedges fire and are accounted exactly once:
  // every hedge either wins, gets cancelled, or fails with its primary.
  EXPECT_GT(m_1.hedges, 0u);
  EXPECT_EQ(m_1.hedges, m_1.hedge_wins + m_1.hedge_cancels + m_1.hedge_failed);
  std::size_t by_replica = 0;
  for (const std::size_t s : m_1.replica_serviced) by_replica += s;
  EXPECT_EQ(by_replica, m_1.serviced);
}

TEST_F(ServeFixture, HedgingOffLeavesCountersZero) {
  const rag::RagPipeline rag = make_pipeline();
  ServeConfig cfg = relaxed_config();
  cfg.replicas = 2;  // replicated but not hedged
  const QueryEngine engine(rag, stores_, spec_, cfg);
  WorkloadConfig wl;
  wl.requests = 48;
  wl.offered_qps = 300.0;
  ServerMetrics m;
  engine.serve(records_, synth_workload(wl, records_.size()), &m);
  EXPECT_EQ(m.hedges, 0u);
  EXPECT_EQ(m.hedge_wins, 0u);
  EXPECT_EQ(m.hedge_cancels, 0u);
  EXPECT_EQ(m.hedge_failed, 0u);
  ASSERT_EQ(m.replica_serviced.size(), 2u);
  EXPECT_EQ(m.replica_serviced[0] + m.replica_serviced[1], m.serviced);
}

TEST_F(ServeFixture, HedgingCutsTheInjectedSlowdownTail) {
  const rag::RagPipeline rag = make_pipeline();
  ServeConfig slow = relaxed_config();
  slow.workers = 4;
  slow.replicas = 2;
  slow.replica_slow_rate = 0.05;
  slow.replica_slow_factor = 10.0;
  ServeConfig hedged = slow;
  hedged.hedge = true;
  WorkloadConfig wl;
  wl.requests = 256;
  wl.offered_qps = 150.0;  // light load: the tail is injection, not queueing
  const auto requests = synth_workload(wl, records_.size());
  ServerMetrics m_plain, m_hedged;
  QueryEngine(rag, stores_, spec_, slow).serve(records_, requests, &m_plain);
  QueryEngine(rag, stores_, spec_, hedged)
      .serve(records_, requests, &m_hedged);
  EXPECT_EQ(m_plain.hedges, 0u);
  EXPECT_GT(m_hedged.hedges, 0u);
  EXPECT_GT(m_hedged.hedge_wins, 0u);
  // The hedge races a fresh replica against the slowed dispatch; only a
  // both-slow draw keeps the tail, so the injected p99/p99.9 collapse.
  EXPECT_LT(m_hedged.latency.p99(), m_plain.latency.p99());
  EXPECT_LE(m_hedged.latency.p999(), m_plain.latency.p999());
}

TEST_F(ServeFixture, HedgeFailoverRescuesFailedPrimaries) {
  const rag::RagPipeline rag = make_pipeline();
  ServeConfig base = relaxed_config();
  base.workers = 4;
  base.replicas = 2;
  base.replica_failure_rate = 0.3;
  base.max_retries = 0;  // the rescue must come from the hedge, not retry
  ServeConfig hedged = base;
  hedged.hedge = true;
  WorkloadConfig wl;
  wl.requests = 160;
  wl.offered_qps = 200.0;
  const auto requests = synth_workload(wl, records_.size());
  ServerMetrics m_plain, m_hedged;
  QueryEngine(rag, stores_, spec_, base).serve(records_, requests, &m_plain);
  const auto results = QueryEngine(rag, stores_, spec_, hedged)
                           .serve(records_, requests, &m_hedged);
  EXPECT_GT(m_plain.failed, 0u);
  EXPECT_LT(m_hedged.failed, m_plain.failed);
  EXPECT_GT(m_hedged.completed, m_plain.completed);
  EXPECT_GT(m_hedged.hedge_wins, 0u);
  EXPECT_EQ(m_hedged.hedges,
            m_hedged.hedge_wins + m_hedged.hedge_cancels +
                m_hedged.hedge_failed);
  for (const auto& r : results) {
    EXPECT_NE(r.status, RequestStatus::kRejected);
  }
}

TEST_F(ServeFixture, DeadlineOnFormationTickExpiresBeforeService) {
  // Regression: a request whose deadline falls exactly on the cutoff
  // flush tick can never finish (service time is strictly positive), so
  // it must expire at dispatch without consuming a slot.
  const rag::RagPipeline rag = make_pipeline();
  ServeConfig cfg = relaxed_config();
  cfg.batch_max = 8;       // the size trigger cannot fire a lone request
  cfg.batch_cutoff_ms = 5.0;
  cfg.deadline_ms = 5.0;   // deadline lands exactly on the cutoff tick
  const QueryEngine engine(rag, stores_, spec_, cfg);
  std::vector<QueryRequest> requests(1);
  requests[0].request_id = "rq_tie";
  requests[0].condition = rag::Condition::kChunks;
  requests[0].arrival_ms = 0.0;
  ServerMetrics metrics;
  const auto results = engine.serve(records_, requests, &metrics);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, RequestStatus::kExpired);
  EXPECT_EQ(results[0].attempts, 0u);  // never reached a slot
  EXPECT_EQ(results[0].latency_ms, 5.0);
  EXPECT_EQ(metrics.expired, 1u);
  EXPECT_EQ(metrics.serviced, 0u);
  EXPECT_EQ(metrics.batches, 0u);  // an all-expired flush forms no batch
}

TEST_F(ServeFixture, ReservedSlotsIsolateInteractiveTail) {
  // Interactive stream alone vs the same stream under a saturating
  // batch-class flood: reserved slots + the capped batch lane must keep
  // the interactive tail within the issue's 1.1x bound.
  const rag::RagPipeline rag = make_pipeline();
  ServeConfig cfg = relaxed_config();
  cfg.workers = 4;
  cfg.reserved_interactive_slots = 2;
  const QueryEngine engine(rag, stores_, spec_, cfg);

  WorkloadConfig wl;
  wl.requests = 160;
  wl.offered_qps = 400.0;
  const auto interactive = synth_workload(wl, records_.size());

  WorkloadConfig flood_cfg;
  flood_cfg.requests = 320;
  flood_cfg.offered_qps = 4000.0;  // saturating bulk traffic
  flood_cfg.seed = 0xb17eULL;
  auto flood = synth_workload(flood_cfg, records_.size());
  for (std::size_t i = 0; i < flood.size(); ++i) {
    flood[i].request_id = "bq_" + std::to_string(i);
    flood[i].klass = RequestClass::kBatch;
  }
  std::vector<QueryRequest> merged;
  merged.reserve(interactive.size() + flood.size());
  std::merge(interactive.begin(), interactive.end(), flood.begin(),
             flood.end(), std::back_inserter(merged),
             [](const QueryRequest& x, const QueryRequest& y) {
               return x.arrival_ms < y.arrival_ms;
             });

  ServerMetrics alone, under_flood;
  engine.serve(records_, interactive, &alone);
  engine.serve(records_, merged, &under_flood);
  EXPECT_EQ(alone.batch_latency.count(), 0u);
  EXPECT_GT(under_flood.batch_latency.count(), 0u);
  EXPECT_EQ(under_flood.interactive_latency.count(), interactive.size());
  EXPECT_LE(under_flood.interactive_latency.p99(),
            1.1 * alone.interactive_latency.p99());
}

TEST_F(ServeFixture, HotKeyTrafficTriggersDeterministicRebalance) {
  const rag::RagPipeline rag = make_pipeline();
  ServeConfig cfg = relaxed_config();
  cfg.heat_window = 32;
  const QueryEngine engine(rag, stores_, spec_, cfg);
  WorkloadConfig wl;
  wl.requests = 192;
  wl.offered_qps = 400.0;
  wl.hot_fraction = 0.9;  // one record dominates its lane
  const auto requests = synth_workload(wl, records_.size());
  ServerMetrics hot_m, again;
  engine.serve(records_, requests, &hot_m);
  EXPECT_GT(hot_m.rebalances, 0u);
  engine.serve(records_, requests, &again);
  EXPECT_EQ(hot_m.rebalances, again.rebalances);  // deterministic surface

  // Heat tracking off (the default window 0) never rebalances.
  const QueryEngine engine_off(rag, stores_, spec_, relaxed_config());
  ServerMetrics off_m;
  engine_off.serve(records_, requests, &off_m);
  EXPECT_EQ(off_m.rebalances, 0u);
}

// --- metrics -----------------------------------------------------------------

TEST(ServerMetricsTest, EmptySnapshotRatesAreZeroNotNan) {
  const ServerMetrics m;
  EXPECT_EQ(m.completion_rate(), 0.0);
  EXPECT_EQ(m.shed_rate(), 0.0);
  EXPECT_EQ(m.expiry_rate(), 0.0);
  EXPECT_EQ(m.failure_rate(), 0.0);
  EXPECT_EQ(m.retry_rate(), 0.0);
  EXPECT_EQ(m.mean_batch_fill(), 0.0);
  EXPECT_EQ(m.throughput_qps(), 0.0);
  EXPECT_EQ(m.utilization(), 0.0);
  EXPECT_EQ(m.latency.p50(), 0.0);
  EXPECT_EQ(m.latency.p99(), 0.0);
  EXPECT_EQ(m.latency.mean(), 0.0);
  EXPECT_EQ(m.latency.max(), 0.0);
  const json::Value v = m.to_json();
  EXPECT_EQ(v.at("rates").at("retry_rate").as_double(), 0.0);
  EXPECT_EQ(v.at("stages").at("latency").at("p99_ms").as_double(), 0.0);
}

TEST(ServerMetricsTest, JsonSnapshotCarriesCountersAndQuantiles) {
  ServerMetrics m(100.0, 2);
  m.offered = 4;
  m.completed = 3;
  m.rejected = 1;
  m.serviced = 3;
  m.batches = 2;
  m.lane_serviced = {2, 1};
  m.makespan_ms = 50.0;
  m.busy_ms = 25.0;
  for (const double x : {1.0, 2.0, 3.0}) m.latency.add(x);
  const json::Value v = m.to_json();
  EXPECT_EQ(v.at("counters").at("offered").as_int(), 4);
  EXPECT_EQ(v.at("counters").at("lane_serviced").at(1).as_int(), 1);
  EXPECT_EQ(v.at("rates").at("completion_rate").as_double(), 0.75);
  EXPECT_EQ(v.at("rates").at("utilization").as_double(), 0.25);
  EXPECT_EQ(v.at("stages").at("latency").at("p50_ms").as_double(), 2.0);
  EXPECT_EQ(v.at("stages").at("latency").at("count").as_int(), 3);
}

TEST(ServerMetricsTest, JsonCarriesLiveTierCountersAndClassLatency) {
  ServerMetrics m(100.0, 4);
  m.hedges = 5;
  m.hedge_wins = 2;
  m.hedge_cancels = 2;
  m.hedge_failed = 1;
  m.replica_slow = 3;
  m.replica_failures = 1;
  m.rebalances = 2;
  m.replica_serviced = {7, 5};
  m.interactive_latency.add(1.0);
  m.batch_latency.add(9.0);
  const json::Value v = m.to_json();
  EXPECT_EQ(v.at("counters").at("hedges").as_int(), 5);
  EXPECT_EQ(v.at("counters").at("hedge_wins").as_int(), 2);
  EXPECT_EQ(v.at("counters").at("hedge_cancels").as_int(), 2);
  EXPECT_EQ(v.at("counters").at("hedge_failed").as_int(), 1);
  EXPECT_EQ(v.at("counters").at("replica_slow").as_int(), 3);
  EXPECT_EQ(v.at("counters").at("rebalances").as_int(), 2);
  EXPECT_EQ(v.at("counters").at("replica_serviced").at(1).as_int(), 5);
  EXPECT_EQ(v.at("stages").at("interactive_latency").at("count").as_int(), 1);
  EXPECT_EQ(v.at("stages").at("batch_latency").at("p50_ms").as_double(), 9.0);
  EXPECT_EQ(v.at("stages").at("latency").at("p999_ms").as_double(), 0.0);
}

TEST(StatusNameTest, CoversEveryStatus) {
  EXPECT_EQ(status_name(RequestStatus::kOk), "ok");
  EXPECT_EQ(status_name(RequestStatus::kRejected), "rejected");
  EXPECT_EQ(status_name(RequestStatus::kExpired), "expired");
  EXPECT_EQ(status_name(RequestStatus::kFailed), "failed");
  EXPECT_EQ(class_name(RequestClass::kInteractive), "interactive");
  EXPECT_EQ(class_name(RequestClass::kBatch), "batch");
}

}  // namespace
}  // namespace mcqa::serve
