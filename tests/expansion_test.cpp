// Tests for continuous benchmark expansion: new documents extend an
// existing benchmark, re-ingestion is idempotent, ids never collide.

#include <gtest/gtest.h>

#include <set>

#include "core/expansion.hpp"
#include "corpus/fact_matcher.hpp"

namespace mcqa::core {
namespace {

struct World {
  corpus::KnowledgeBase kb = corpus::KnowledgeBase::generate(
      corpus::KbConfig{.facts_per_topic = 14, .seed = 91, .math_fraction = 0.4});
  corpus::FactMatcher matcher{kb};
  embed::HashedNGramEmbedder embedder = embed::make_biomed_encoder();
  llm::TeacherModel teacher{kb, matcher};
};

World& world() {
  static World w;
  return w;
}

std::vector<corpus::RawDocument> make_batch(std::uint64_t seed,
                                            double scale = 0.002) {
  corpus::CorpusConfig cfg;
  cfg.scale = scale;
  cfg.seed = seed;
  return build_corpus(world().kb, cfg).documents;
}

TEST(Expansion, FirstBatchProducesRecordsAndTraces) {
  const auto batch = make_batch(1);
  const ExpansionResult result = expand_benchmark(
      batch, /*existing=*/{}, world().embedder, world().teacher);
  EXPECT_EQ(result.documents_in, batch.size());
  EXPECT_GT(result.documents_parsed, batch.size() * 9 / 10);
  EXPECT_GT(result.new_chunks, batch.size());
  EXPECT_GT(result.new_records.size(), 0u);
  for (int m = 0; m < trace::kTraceModeCount; ++m) {
    EXPECT_EQ(result.new_traces[static_cast<std::size_t>(m)].size(),
              result.new_records.size());
    for (const auto& t : result.new_traces[static_cast<std::size_t>(m)]) {
      EXPECT_TRUE(t.has_grading);
    }
  }
}

TEST(Expansion, ReingestionIsIdempotent) {
  const auto batch = make_batch(2);
  const ExpansionResult first = expand_benchmark(
      batch, {}, world().embedder, world().teacher);

  // Collect the chunk ids now "in the benchmark".
  std::unordered_set<std::string> seen;
  // The honest ledger is all fresh chunk ids; approximate with the
  // records' chunk ids plus re-deriving: re-run and confirm zero new
  // records when every chunk id from the first pass is excluded.
  // Re-derive all chunk ids by running with empty exclusions again and
  // capturing from the records' provenance is insufficient (filtered
  // chunks also exist), so exclude via a full re-chunk:
  {
    const parse::AdaptiveParser parser;
    const chunk::SemanticChunker chunker(world().embedder);
    for (const auto& doc : batch) {
      auto outcome = parser.parse(doc.bytes);
      if (!outcome.ok) continue;
      // Mirror the expansion pipeline: formats that don't embed a doc id
      // (markdown/plain text) get it from the raw document.
      if (outcome.document.doc_id.empty()) {
        outcome.document.doc_id = doc.doc_id;
      }
      for (const auto& c : chunker.chunk(outcome.document)) {
        seen.insert(c.chunk_id);
      }
    }
  }

  const ExpansionResult second = expand_benchmark(
      batch, seen, world().embedder, world().teacher);
  EXPECT_EQ(second.new_chunks, 0u);
  EXPECT_TRUE(second.new_records.empty());
  EXPECT_EQ(second.documents_skipped, second.documents_parsed);
  EXPECT_GT(first.new_records.size(), 0u);
}

TEST(Expansion, NewBatchExtendsWithoutIdCollisions) {
  const auto batch1 = make_batch(3);
  const ExpansionResult first = expand_benchmark(
      batch1, {}, world().embedder, world().teacher);

  std::unordered_set<std::string> seen;
  for (const auto& r : first.new_records) seen.insert(r.chunk_id);

  // Different seed -> different doc ids -> genuinely new content.
  const auto batch2 = make_batch(4);
  const ExpansionResult second = expand_benchmark(
      batch2, seen, world().embedder, world().teacher);
  EXPECT_GT(second.new_records.size(), 0u);

  std::set<std::string> all_ids;
  for (const auto& r : first.new_records) {
    EXPECT_TRUE(all_ids.insert(r.record_id).second);
  }
  for (const auto& r : second.new_records) {
    EXPECT_TRUE(all_ids.insert(r.record_id).second) << r.record_id;
  }
}

TEST(Expansion, ExpandedRecordsPassSameQualityBar) {
  const auto batch = make_batch(5);
  const ExpansionResult result = expand_benchmark(
      batch, {}, world().embedder, world().teacher);
  for (const auto& r : result.new_records) {
    EXPECT_GE(r.quality_score, 7.0);
    EXPECT_TRUE(world().matcher.contains(r.text, r.fact));
  }
}

TEST(Expansion, EmptyBatch) {
  const ExpansionResult result = expand_benchmark(
      {}, {}, world().embedder, world().teacher);
  EXPECT_EQ(result.documents_in, 0u);
  EXPECT_TRUE(result.new_records.empty());
}

TEST(Expansion, CorruptDocumentsSkippedGracefully) {
  std::vector<corpus::RawDocument> batch = make_batch(6, 0.001);
  corpus::RawDocument corrupt;
  corrupt.doc_id = "corrupt_1";
  corrupt.bytes = "%SPDF-1.2\n%%Title: broken\n";  // no pages
  batch.push_back(corrupt);
  const ExpansionResult result = expand_benchmark(
      batch, {}, world().embedder, world().teacher);
  EXPECT_EQ(result.documents_parsed, batch.size() - 1);
}

}  // namespace
}  // namespace mcqa::core
