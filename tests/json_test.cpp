// Unit tests for the in-tree JSON value model, parser and writer.

#include <gtest/gtest.h>

#include "json/json.hpp"

namespace mcqa::json {
namespace {

TEST(JsonValue, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(3).is_int());
  EXPECT_TRUE(Value(3.5).is_double());
  EXPECT_TRUE(Value(3).is_number());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_TRUE(Value(Array{}).is_array());
  EXPECT_TRUE(Value(Object{}).is_object());
}

TEST(JsonValue, AccessorsWidenInts) {
  EXPECT_DOUBLE_EQ(Value(3).as_double(), 3.0);
  EXPECT_EQ(Value(3.0).as_int(), 3);
  EXPECT_THROW(Value(3.5).as_int(), TypeError);
  EXPECT_THROW(Value("x").as_double(), TypeError);
}

TEST(JsonValue, ObjectInsertionOrderPreserved) {
  Value v = Value::object();
  v["zebra"] = 1;
  v["apple"] = 2;
  v["mid"] = 3;
  const std::string out = v.dump();
  const auto z = out.find("zebra");
  const auto a = out.find("apple");
  const auto m = out.find("mid");
  EXPECT_LT(z, a);
  EXPECT_LT(a, m);
}

TEST(JsonValue, ObjectFindAndErase) {
  Object o;
  o["a"] = 1;
  o["b"] = 2;
  o["c"] = 3;
  EXPECT_TRUE(o.contains("b"));
  EXPECT_TRUE(o.erase("b"));
  EXPECT_FALSE(o.contains("b"));
  EXPECT_FALSE(o.erase("b"));
  // Index integrity after erase.
  EXPECT_EQ(o.at("c").as_int(), 3);
  EXPECT_EQ(o.size(), 2u);
}

TEST(JsonValue, ObjectEqualityOrderInsensitive) {
  Object a;
  a["x"] = 1;
  a["y"] = 2;
  Object b;
  b["y"] = 2;
  b["x"] = 1;
  EXPECT_TRUE(a == b);
}

TEST(JsonValue, GetOrDefaults) {
  Value v = Value::object();
  v["present"] = "yes";
  v["num"] = 4;
  v["flag"] = true;
  EXPECT_EQ(v.get_or("present", "no"), "yes");
  EXPECT_EQ(v.get_or("absent", "no"), "no");
  EXPECT_EQ(v.get_or("num", std::int64_t{0}), 4);
  EXPECT_EQ(v.get_or("absent", std::int64_t{7}), 7);
  EXPECT_TRUE(v.get_or("flag", false));
  EXPECT_DOUBLE_EQ(v.get_or("absent", 2.5), 2.5);
  // Type mismatch falls back too.
  EXPECT_EQ(v.get_or("num", "fallback"), "fallback");
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Value::parse("null").is_null());
  EXPECT_EQ(Value::parse("true").as_bool(), true);
  EXPECT_EQ(Value::parse("false").as_bool(), false);
  EXPECT_EQ(Value::parse("42").as_int(), 42);
  EXPECT_EQ(Value::parse("-17").as_int(), -17);
  EXPECT_DOUBLE_EQ(Value::parse("3.25").as_double(), 3.25);
  EXPECT_DOUBLE_EQ(Value::parse("1e3").as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(Value::parse("-2.5E-2").as_double(), -0.025);
  EXPECT_EQ(Value::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, NestedStructure) {
  const Value v = Value::parse(R"({"a": [1, 2, {"b": null}], "c": "d"})");
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_TRUE(v.at("a").at(2).at("b").is_null());
  EXPECT_EQ(v.at("c").as_string(), "d");
}

TEST(JsonParse, StringEscapes) {
  const Value v = Value::parse(R"("a\nb\t\"q\"\\x\/")");
  EXPECT_EQ(v.as_string(), "a\nb\t\"q\"\\x/");
}

TEST(JsonParse, UnicodeEscapes) {
  EXPECT_EQ(Value::parse(R"("A")").as_string(), "A");
  // 2-byte UTF-8.
  EXPECT_EQ(Value::parse(R"("é")").as_string(), "\xc3\xa9");
  // Surrogate pair -> 4-byte UTF-8 (U+1F600).
  EXPECT_EQ(Value::parse(R"("😀")").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParse, Whitespace) {
  const Value v = Value::parse("  {\n \"a\" :\t[ ]\r\n}  ");
  EXPECT_TRUE(v.at("a").as_array().empty());
}

TEST(JsonParse, Errors) {
  EXPECT_THROW(Value::parse(""), ParseError);
  EXPECT_THROW(Value::parse("{"), ParseError);
  EXPECT_THROW(Value::parse("[1,]"), ParseError);
  EXPECT_THROW(Value::parse("tru"), ParseError);
  EXPECT_THROW(Value::parse("\"unterminated"), ParseError);
  EXPECT_THROW(Value::parse("1 2"), ParseError);  // trailing garbage
  EXPECT_THROW(Value::parse("{\"a\":1,\"a\":2}"), ParseError);  // dup key
  EXPECT_THROW(Value::parse("\"bad\\q\""), ParseError);
  EXPECT_THROW(Value::parse("-"), ParseError);
  EXPECT_THROW(Value::parse("\"\x01\""), ParseError);  // raw control char
}

TEST(JsonParse, ErrorCarriesOffset) {
  try {
    Value::parse("[1, 2, oops]");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_GT(e.offset(), 0u);
  }
}

TEST(JsonDump, CompactAndPretty) {
  Value v = Value::object();
  v["a"] = Value::array({1, 2});
  EXPECT_EQ(v.dump(), R"({"a":[1,2]})");
  const std::string pretty = v.dump(2);
  EXPECT_NE(pretty.find("\n"), std::string::npos);
  EXPECT_NE(pretty.find("  \"a\""), std::string::npos);
}

TEST(JsonDump, EscapesControlCharacters) {
  const Value v(std::string("a\x01" "b\nc"));
  const std::string out = v.dump();
  EXPECT_NE(out.find("\\u0001"), std::string::npos);
  EXPECT_NE(out.find("\\n"), std::string::npos);
}

TEST(JsonDump, NanAndInfBecomeNull) {
  EXPECT_EQ(Value(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
  EXPECT_EQ(Value(std::numeric_limits<double>::infinity()).dump(), "null");
}

class JsonRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonRoundTrip, ParseDumpParseIsIdentity) {
  const Value v1 = Value::parse(GetParam());
  const Value v2 = Value::parse(v1.dump());
  EXPECT_TRUE(v1 == v2) << GetParam();
  // Pretty printing round-trips too.
  const Value v3 = Value::parse(v1.dump(2));
  EXPECT_TRUE(v1 == v3);
}

INSTANTIATE_TEST_SUITE_P(
    Documents, JsonRoundTrip,
    ::testing::Values(
        "null", "true", "0", "-1", "3.5", "\"s\"", "[]", "{}",
        R"([1, "two", 3.0, false, null])",
        R"({"nested": {"deep": {"deeper": [1, [2, [3]]]}}})",
        R"({"question": "What is p53?", "options": ["a", "b"], "idx": 2})",
        R"({"unicode": "éß", "esc": "line\nbreak"})",
        R"({"big": 9007199254740993, "neg": -9007199254740993})",
        R"({"sci": 6.022e23, "tiny": 1.6e-19})"));

TEST(JsonRoundTripDoubles, ShortestRepresentation) {
  // 0.1 must round-trip exactly through the trimmed writer.
  const Value v = Value::parse("0.1");
  EXPECT_DOUBLE_EQ(Value::parse(v.dump()).as_double(), 0.1);
}

TEST(JsonValue, DeepNestingParses) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  deep += "1";
  for (int i = 0; i < 200; ++i) deep += "]";
  const Value v = Value::parse(deep);
  const Value* cur = &v;
  for (int i = 0; i < 200; ++i) cur = &cur->at(std::size_t{0});
  EXPECT_EQ(cur->as_int(), 1);
}

TEST(JsonValue, ArrayIndexOutOfRange) {
  const Value v = Value::parse("[1]");
  EXPECT_THROW(v.at(std::size_t{5}), TypeError);
}

TEST(JsonValue, MissingKeyThrows) {
  const Value v = Value::parse("{}");
  EXPECT_THROW(v.at("nope"), TypeError);
}

}  // namespace
}  // namespace mcqa::json
