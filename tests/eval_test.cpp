// Unit tests for the evaluation layer: judge, accuracy math, reports,
// paper-reference data.

#include <gtest/gtest.h>

#include "eval/harness.hpp"
#include "eval/judge.hpp"
#include "eval/paper_reference.hpp"
#include "eval/report.hpp"

namespace mcqa::eval {
namespace {

llm::McqTask judge_task() {
  llm::McqTask task;
  task.id = "jt";
  task.stem = "Which agent radiosensitizes HeLa cells?";
  task.options = {"amifostine", "cisplatin", "caffeine", "metformin"};
  task.correct_index = 1;
  return task;
}

// --- judge ---------------------------------------------------------------------

class JudgeExtraction
    : public ::testing::TestWithParam<std::pair<const char*, int>> {};

TEST_P(JudgeExtraction, ExtractsExpectedOption) {
  const Judge judge;
  const auto [text, expected] = GetParam();
  EXPECT_EQ(judge.extract_option(text, judge_task().options), expected)
      << text;
}

INSTANTIATE_TEST_SUITE_P(
    Formats, JudgeExtraction,
    ::testing::Values(
        std::make_pair("Answer: (B) cisplatin. Established.", 1),
        std::make_pair("The answer is b", 1),
        std::make_pair("(2) looks right to me", 1),
        std::make_pair("answer: 2", 1),
        std::make_pair("I would select option c here", 2),
        std::make_pair("Considering everything, cisplatin is the agent "
                       "responsible.",
                       1),
        std::make_pair("It could relate to caffeine though other options "
                       "exist",
                       2),
        std::make_pair("Answer: (A) amifostine.", 0),
        std::make_pair("choice 4 is the only consistent one", 3),
        std::make_pair("no option named and nothing matching", -1),
        std::make_pair("", -1)));

TEST(Judge, FuzzyRescueOfTypos) {
  const Judge judge;
  // Misspelled option restated at the end.
  const int got = judge.extract_option(
      "After weighing the mechanisms the most plausible pick is cisplatn",
      judge_task().options);
  EXPECT_EQ(got, 1);
}

TEST(Judge, FirstMentionWinsForPlainText) {
  const Judge judge;
  const int got = judge.extract_option(
      "While caffeine was considered, evidence favors it over metformin.",
      judge_task().options);
  EXPECT_EQ(got, 2);  // caffeine mentioned first
}

TEST(Judge, GradeProducesSchemaFields) {
  const Judge judge;
  const llm::McqTask task = judge_task();
  const trace::GradingResult ok =
      judge.grade(task, "Answer: (B) cisplatin.");
  EXPECT_TRUE(ok.is_correct);
  EXPECT_EQ(ok.extracted_option_number, 2);  // 1-based per the schema
  EXPECT_EQ(ok.correct_option_number, 2);
  EXPECT_FALSE(ok.reasoning.empty());

  const trace::GradingResult wrong = judge.grade(task, "Answer: (C).");
  EXPECT_FALSE(wrong.is_correct);
  EXPECT_EQ(wrong.extracted_option_number, 3);

  const trace::GradingResult none = judge.grade(task, "I cannot tell.");
  EXPECT_FALSE(none.is_correct);
  EXPECT_EQ(none.extracted_option_number, -1);
  EXPECT_LT(none.confidence, 0.5);
}

TEST(Judge, NoOptionsMeansNoExtraction) {
  const Judge judge;
  EXPECT_EQ(judge.extract_option("Answer: (A)", {}), -1);
}

TEST(Judge, LetterBeyondOptionCountIgnored) {
  const Judge judge;
  // Only 4 options; "(F)" is not a valid reference.
  EXPECT_EQ(judge.extract_option("Answer: (F)", judge_task().options), -1);
}

// --- accuracy -------------------------------------------------------------------

TEST(Accuracy, ValueAndCi) {
  Accuracy acc;
  acc.correct = 75;
  acc.total = 100;
  EXPECT_DOUBLE_EQ(acc.value(), 0.75);
  const double half = acc.ci95_halfwidth();
  EXPECT_GT(half, 0.05);
  EXPECT_LT(half, 0.12);
  Accuracy empty;
  EXPECT_DOUBLE_EQ(empty.value(), 0.0);
  EXPECT_DOUBLE_EQ(empty.ci95_halfwidth(), 0.0);
}

TEST(Accuracy, CiShrinksWithN) {
  Accuracy small;
  small.correct = 8;
  small.total = 10;
  Accuracy large;
  large.correct = 800;
  large.total = 1000;
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(SweepResult, LookupAndBestTrace) {
  SweepResult sweep;
  const auto add = [&sweep](const char* model, rag::Condition c,
                            std::size_t correct) {
    CellResult cell;
    cell.model = model;
    cell.condition = c;
    cell.accuracy.correct = correct;
    cell.accuracy.total = 100;
    sweep.cells.push_back(cell);
  };
  add("m", rag::Condition::kBaseline, 40);
  add("m", rag::Condition::kTraceDetailed, 70);
  add("m", rag::Condition::kTraceFocused, 75);
  add("m", rag::Condition::kTraceEfficient, 72);
  EXPECT_DOUBLE_EQ(sweep.at("m", rag::Condition::kBaseline).value(), 0.40);
  const auto [cond, acc] = sweep.best_trace("m");
  EXPECT_EQ(cond, rag::Condition::kTraceFocused);
  EXPECT_DOUBLE_EQ(acc.value(), 0.75);
  EXPECT_THROW(sweep.at("other", rag::Condition::kBaseline),
               std::out_of_range);
  EXPECT_THROW(sweep.best_trace("other"), std::out_of_range);

  // The lazy lookup index rebuilds after cells are appended.
  add("late", rag::Condition::kChunks, 55);
  EXPECT_DOUBLE_EQ(sweep.at("late", rag::Condition::kChunks).value(), 0.55);
  EXPECT_DOUBLE_EQ(sweep.at("m", rag::Condition::kTraceDetailed).value(),
                   0.70);
}

TEST(SweepResult, BestTraceTieBreaksTowardFirstTraceCondition) {
  SweepResult sweep;
  const auto add = [&sweep](const char* model, rag::Condition c,
                            std::size_t correct) {
    CellResult cell;
    cell.model = model;
    cell.condition = c;
    cell.accuracy.correct = correct;
    cell.accuracy.total = 100;
    sweep.cells.push_back(cell);
  };
  // Detailed and efficient tie; detailed comes first in sweep order and
  // must win deterministically.
  add("m", rag::Condition::kBaseline, 40);
  add("m", rag::Condition::kTraceDetailed, 70);
  add("m", rag::Condition::kTraceFocused, 65);
  add("m", rag::Condition::kTraceEfficient, 70);
  const auto [cond, acc] = sweep.best_trace("m");
  EXPECT_EQ(cond, rag::Condition::kTraceDetailed);
  EXPECT_DOUBLE_EQ(acc.value(), 0.70);

  // An all-way tie also keeps the first trace cell.
  SweepResult tied;
  const auto add_tied = [&tied](rag::Condition c) {
    CellResult cell;
    cell.model = "t";
    cell.condition = c;
    cell.accuracy.correct = 50;
    cell.accuracy.total = 100;
    tied.cells.push_back(cell);
  };
  add_tied(rag::Condition::kTraceDetailed);
  add_tied(rag::Condition::kTraceFocused);
  add_tied(rag::Condition::kTraceEfficient);
  EXPECT_EQ(tied.best_trace("t").first, rag::Condition::kTraceDetailed);
}

// --- report ---------------------------------------------------------------------

TEST(TableWriter, AlignsColumns) {
  TableWriter t({"Model", "Acc"});
  t.add_row({"TinyLlama-1.1B-Chat", "0.176"});
  t.add_row({"Qwen", "0.914"});
  const std::string out = t.render();
  // Header separator and both rows present.
  EXPECT_NE(out.find("| Model"), std::string::npos);
  EXPECT_NE(out.find("|---"), std::string::npos);
  EXPECT_NE(out.find("TinyLlama"), std::string::npos);
  // Every line same length (alignment).
  std::size_t line_len = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t nl = out.find('\n', pos);
    if (line_len == 0) line_len = nl - pos;
    EXPECT_EQ(nl - pos, line_len);
    pos = nl + 1;
  }
}

TEST(TableWriter, ShortRowsPadded) {
  TableWriter t({"A", "B", "C"});
  t.add_row({"only-one"});
  EXPECT_NE(t.render().find("only-one"), std::string::npos);
}

TEST(Report, Formatting) {
  EXPECT_EQ(fmt_acc(0.7314), "0.731");
  EXPECT_EQ(fmt_pct(31.44), "+31.4%");
  EXPECT_EQ(fmt_pct(-2.0), "-2.0%");
}

TEST(Report, PctImprovement) {
  EXPECT_NEAR(pct_improvement(0.71, 0.176), 303.4, 0.1);
  EXPECT_DOUBLE_EQ(pct_improvement(0.5, 0.0), 0.0);
  EXPECT_LT(pct_improvement(0.4, 0.5), 0.0);
}

TEST(Report, GroupedBarsRenderBothSigns) {
  const std::vector<std::string> groups{"ModelA", "ModelB"};
  const std::vector<FigureSeries> series{
      {"vs Baseline", {40.0, -12.0}},
      {"vs RAG-Chunks", {10.0, 3.0}},
  };
  const std::string out = render_grouped_bars(groups, series, "Figure X");
  EXPECT_NE(out.find("Figure X"), std::string::npos);
  EXPECT_NE(out.find("ModelA"), std::string::npos);
  EXPECT_NE(out.find("vs Baseline"), std::string::npos);
  EXPECT_NE(out.find("+40.0%"), std::string::npos);
  EXPECT_NE(out.find("-12.0%"), std::string::npos);
}

// --- paper reference ----------------------------------------------------------------

TEST(PaperReference, EightRowsPerTable) {
  EXPECT_EQ(paper_table2().size(), 8u);
  EXPECT_EQ(paper_table3().size(), 8u);
  EXPECT_EQ(paper_table4().size(), 8u);
}

TEST(PaperReference, SpotValuesFromPaper) {
  EXPECT_DOUBLE_EQ(paper_table2_row("TinyLlama-1.1B-Chat").accuracy[0],
                   0.176);
  EXPECT_DOUBLE_EQ(paper_table2_row("Llama-3.1-8B-Instruct").accuracy[4],
                   0.916);
  EXPECT_DOUBLE_EQ(paper_table3_row("OLMo-7B").accuracy[1], 0.269);
  EXPECT_DOUBLE_EQ(paper_table4_row("SmolLM3-3B").accuracy[2], 0.894);
  EXPECT_THROW(paper_table2_row("GPT-4"), std::out_of_range);
}

TEST(PaperReference, ConditionIndexMapping) {
  EXPECT_EQ(paper_condition_index(rag::Condition::kBaseline), 0u);
  EXPECT_EQ(paper_condition_index(rag::Condition::kTraceEfficient), 4u);
}

TEST(PaperReference, FunnelConstants) {
  EXPECT_EQ(PaperFunnel::kDocuments,
            PaperFunnel::kPapers + PaperFunnel::kAbstracts);
  EXPECT_NEAR(PaperFunnel::acceptance_rate(), 0.096, 0.002);
}

TEST(PaperReference, PaperShapesHoldInReferenceData) {
  // Sanity on the transcription itself: RT best-of-three beats baseline
  // in Table 2 for every model.
  for (const auto& row : paper_table2()) {
    const double best_rt = std::max(
        {row.accuracy[2], row.accuracy[3], row.accuracy[4]});
    EXPECT_GT(best_rt, row.accuracy[0]) << row.model;
    EXPECT_GT(best_rt, row.accuracy[1]) << row.model;
  }
  // Table 4: RT best strictly beats both baseline and chunks (the
  // paper's no-math claim).
  for (const auto& row : paper_table4()) {
    EXPECT_GT(row.accuracy[2], row.accuracy[0]) << row.model;
    EXPECT_GT(row.accuracy[2], row.accuracy[1]) << row.model;
  }
}

}  // namespace
}  // namespace mcqa::eval
