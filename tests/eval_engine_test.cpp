// Memoized cell-parallel evaluation engine contract:
//
//  * a shared RetrievalPlan produces tasks fieldwise-identical to the
//    per-cell prepare_batch path (the plan only hoists the
//    model-independent retrieval);
//  * EvalHarness::sweep is identical to the seed's serial double loop
//    over evaluate(), at any thread count, with the eval-cell cache on
//    or off;
//  * the cell cache restores every cell on a warm sweep, keys cells by
//    model/condition/record-set, and a corrupt blob falls back to
//    recompute.
//
// Suites EvalEngine/EvalCache also run under the tsan preset (the grid
// TaskGroup + shared-pool cells are a concurrency surface).

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/eval_cache.hpp"
#include "core/executor.hpp"
#include "core/pipeline.hpp"
#include "eval/harness.hpp"
#include "parallel/thread_pool.hpp"
#include "rag/rag_pipeline.hpp"

namespace {

using namespace mcqa;
using core::PipelineConfig;
using core::PipelineContext;

constexpr double kTestScale = 0.008;

const PipelineContext& test_context() {
  static const PipelineContext ctx([] {
    PipelineConfig cfg = PipelineConfig::paper_scale(kTestScale);
    cfg.threads = 4;
    cfg.checkpoint_dir.clear();
    return cfg;
  }());
  return ctx;
}

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    path = std::filesystem::temp_directory_path() /
           ("mcqa-evalcache-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter()++));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  static std::atomic<int>& counter() {
    static std::atomic<int> c{0};
    return c;
  }
};

bool sweeps_equal(const eval::SweepResult& a, const eval::SweepResult& b) {
  if (a.cells.size() != b.cells.size()) return false;
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const auto& x = a.cells[i];
    const auto& y = b.cells[i];
    if (x.model != y.model || x.condition != y.condition ||
        x.accuracy.correct != y.accuracy.correct ||
        x.accuracy.total != y.accuracy.total ||
        x.accuracy.unparseable != y.accuracy.unparseable) {
      return false;
    }
  }
  return true;
}

/// The seed semantics: serial double loop, one evaluate() per cell.
eval::SweepResult reference_sweep(const PipelineContext& ctx,
                                  const std::vector<qgen::McqRecord>& records,
                                  parallel::ThreadPool& pool) {
  eval::HarnessConfig hc;
  hc.pool = &pool;
  const eval::EvalHarness harness(ctx.rag(), hc);
  const auto models = ctx.student_ptrs();
  const auto specs = ctx.student_specs();
  eval::SweepResult out;
  for (std::size_t m = 0; m < models.size(); ++m) {
    for (const rag::Condition c : eval::all_conditions()) {
      eval::CellResult cell;
      cell.model = std::string(models[m]->name());
      cell.condition = c;
      cell.accuracy = harness.evaluate(*models[m], specs[m], records, c);
      out.cells.push_back(std::move(cell));
    }
  }
  return out;
}

eval::SweepResult grid_sweep(const PipelineContext& ctx,
                             const std::vector<qgen::McqRecord>& records,
                             parallel::ThreadPool& pool,
                             const eval::CellCache* cache = nullptr,
                             eval::SweepStats* stats = nullptr) {
  eval::HarnessConfig hc;
  hc.pool = &pool;
  hc.cell_cache = cache;
  const eval::EvalHarness harness(ctx.rag(), hc);
  return harness.sweep(ctx.student_ptrs(), ctx.student_specs(), records,
                       eval::all_conditions(), stats);
}

void expect_tasks_equal(const llm::McqTask& a, const llm::McqTask& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.stem, b.stem);
  EXPECT_EQ(a.options, b.options);
  EXPECT_EQ(a.context, b.context);
  EXPECT_EQ(a.correct_index, b.correct_index);
  EXPECT_EQ(a.fact, b.fact);
  EXPECT_EQ(a.has_fact, b.has_fact);
  EXPECT_EQ(a.math, b.math);
  EXPECT_EQ(a.fact_importance, b.fact_importance);
  EXPECT_EQ(a.ambiguity, b.ambiguity);
  EXPECT_EQ(a.exam_item, b.exam_item);
  EXPECT_EQ(a.context_is_trace, b.context_is_trace);
  EXPECT_EQ(a.context_is_terse, b.context_is_terse);
  EXPECT_EQ(a.context_has_fact, b.context_has_fact);
  EXPECT_EQ(a.context_saliency, b.context_saliency);
  EXPECT_EQ(a.context_has_elimination, b.context_has_elimination);
  EXPECT_EQ(a.context_has_worked_math, b.context_has_worked_math);
  EXPECT_EQ(a.context_misleading_options, b.context_misleading_options);
  EXPECT_EQ(a.context_mislead_strength, b.context_mislead_strength);
}

// --- shared retrieval plans --------------------------------------------------

TEST(EvalEngine, PlanTasksMatchPrepareBatchFieldwise) {
  const PipelineContext& ctx = test_context();
  const auto& records = ctx.benchmark();
  ASSERT_FALSE(records.empty());
  parallel::ThreadPool pool(4);
  const auto specs = ctx.student_specs();

  for (const rag::Condition c : eval::all_conditions()) {
    const rag::RetrievalPlan plan =
        ctx.rag().plan_retrieval(records, c, pool);
    // One plan serves every model's spec.
    for (const auto& spec : {specs.front(), specs.back()}) {
      const std::vector<llm::McqTask> batch =
          ctx.rag().prepare_batch(records, c, spec, pool);
      ASSERT_EQ(batch.size(), records.size());
      for (std::size_t i = 0; i < records.size(); ++i) {
        const llm::McqTask from_plan =
            ctx.rag().prepare_from_plan(records[i], plan, i, spec);
        expect_tasks_equal(from_plan, batch[i]);
      }
    }
  }
}

TEST(EvalEngine, FillPlanRangesMatchBatchedPlan) {
  const PipelineContext& ctx = test_context();
  const auto& records = ctx.benchmark();
  parallel::ThreadPool pool(2);
  const rag::Condition c = rag::Condition::kChunks;

  const rag::RetrievalPlan batched = ctx.rag().plan_retrieval(records, c, pool);
  rag::RetrievalPlan ranged = ctx.rag().make_plan(records, c);
  ASSERT_EQ(ranged.active, batched.active);
  // Fill in uneven disjoint ranges, as the grid's plan tasks do.
  const std::size_t mid = records.size() / 3;
  ctx.rag().fill_plan(ranged, records, mid, records.size());
  ctx.rag().fill_plan(ranged, records, 0, mid);
  ASSERT_EQ(ranged.hits.size(), batched.hits.size());
  for (std::size_t i = 0; i < ranged.hits.size(); ++i) {
    ASSERT_EQ(ranged.hits[i].size(), batched.hits[i].size()) << "record " << i;
    for (std::size_t k = 0; k < ranged.hits[i].size(); ++k) {
      EXPECT_EQ(ranged.hits[i][k].id, batched.hits[i][k].id);
      EXPECT_EQ(ranged.hits[i][k].score, batched.hits[i][k].score);
    }
  }
}

// --- grid sweep determinism --------------------------------------------------

TEST(EvalEngine, SweepMatchesSerialReferenceAcrossThreadCounts) {
  const PipelineContext& ctx = test_context();
  const auto& records = ctx.benchmark();
  parallel::ThreadPool ref_pool(2);
  const eval::SweepResult reference =
      reference_sweep(ctx, records, ref_pool);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    parallel::ThreadPool pool(threads);
    eval::SweepStats stats;
    const eval::SweepResult swept =
        grid_sweep(ctx, records, pool, nullptr, &stats);
    EXPECT_TRUE(sweeps_equal(swept, reference))
        << "grid sweep diverged at " << threads << " threads";
    EXPECT_EQ(stats.cells_computed, swept.cells.size());
    EXPECT_EQ(stats.cells_restored, 0u);
    // Four retrieval-active conditions, hit once per record each; the
    // per-cell path would have retrieved once per record per model.
    EXPECT_GE(stats.naive_retrieval_queries, 4 * stats.retrieval_queries);
  }
}

TEST(EvalEngine, SweepStatsCountSharedRetrieval) {
  const PipelineContext& ctx = test_context();
  const auto& records = ctx.benchmark();
  parallel::ThreadPool pool(4);
  eval::SweepStats stats;
  grid_sweep(ctx, records, pool, nullptr, &stats);
  const std::size_t active_conditions = 4;  // chunks + three trace modes
  EXPECT_EQ(stats.retrieval_queries, active_conditions * records.size());
  EXPECT_EQ(stats.naive_retrieval_queries,
            active_conditions * records.size() * ctx.students().size());
}

TEST(EvalEngine, EvaluateUsesCallerPool) {
  const PipelineContext& ctx = test_context();
  const auto& records = ctx.benchmark();
  const auto models = ctx.student_ptrs();
  const auto specs = ctx.student_specs();

  const eval::EvalHarness own_pool_harness(ctx.rag());
  const eval::Accuracy baseline = own_pool_harness.evaluate(
      *models[0], specs[0], records, rag::Condition::kChunks);

  parallel::ThreadPool pool(3);
  eval::HarnessConfig hc;
  hc.pool = &pool;
  const eval::EvalHarness shared_pool_harness(ctx.rag(), hc);
  const eval::Accuracy shared = shared_pool_harness.evaluate(
      *models[0], specs[0], records, rag::Condition::kChunks);
  EXPECT_EQ(shared.correct, baseline.correct);
  EXPECT_EQ(shared.total, baseline.total);
  EXPECT_EQ(shared.unparseable, baseline.unparseable);
}

// --- eval-cell cache ---------------------------------------------------------

TEST(EvalCache, WarmSweepRestoresEveryCellIdentically) {
  const PipelineContext& ctx = test_context();
  const auto& records = ctx.benchmark();
  parallel::ThreadPool pool(4);
  const TempDir dir;
  const core::EvalCellCache cache(
      dir.path.string(), core::EvalCellCache::sweep_key(ctx, records));

  eval::SweepStats cold_stats;
  const eval::SweepResult cold =
      grid_sweep(ctx, records, pool, &cache, &cold_stats);
  EXPECT_EQ(cold_stats.cells_restored, 0u);
  EXPECT_EQ(cold_stats.cells_computed, cold.cells.size());
  EXPECT_EQ(cache.stats().stores, cold.cells.size());

  eval::SweepStats warm_stats;
  const eval::SweepResult warm =
      grid_sweep(ctx, records, pool, &cache, &warm_stats);
  EXPECT_TRUE(sweeps_equal(warm, cold));
  EXPECT_EQ(warm_stats.cells_restored, cold.cells.size());
  EXPECT_EQ(warm_stats.cells_computed, 0u);
  EXPECT_EQ(warm_stats.retrieval_queries, 0u);

  // And the uncached sweep agrees with both.
  EXPECT_TRUE(sweeps_equal(grid_sweep(ctx, records, pool), cold));
}

TEST(EvalCache, RecordSubsetKeysSeparately) {
  const PipelineContext& ctx = test_context();
  const auto& records = ctx.benchmark();
  ASSERT_GT(records.size(), 2u);
  const std::vector<qgen::McqRecord> subset(records.begin(),
                                            records.end() - 1);
  EXPECT_NE(core::EvalCellCache::sweep_key(ctx, records),
            core::EvalCellCache::sweep_key(ctx, subset));

  // A cache scoped to the subset never serves the full set's totals.
  parallel::ThreadPool pool(2);
  const TempDir dir;
  const core::EvalCellCache cache(
      dir.path.string(), core::EvalCellCache::sweep_key(ctx, subset));
  grid_sweep(ctx, subset, pool, &cache);
  EXPECT_FALSE(cache
                   .load(std::string(ctx.student_ptrs()[0]->name()),
                         rag::Condition::kBaseline, records.size())
                   .has_value());
}

TEST(EvalCache, CorruptBlobFallsBackToRecompute) {
  const PipelineContext& ctx = test_context();
  const auto& records = ctx.benchmark();
  parallel::ThreadPool pool(4);
  const TempDir dir;
  const core::EvalCellCache cache(
      dir.path.string(), core::EvalCellCache::sweep_key(ctx, records));

  const eval::SweepResult cold = grid_sweep(ctx, records, pool, &cache);
  // Corrupt every cached cell blob; the warm sweep must recompute and
  // still agree, not crash or serve garbage.
  std::size_t corrupted = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out << "ckcell1\n";
    ++corrupted;
  }
  ASSERT_EQ(corrupted, cold.cells.size());
  eval::SweepStats stats;
  const eval::SweepResult warm =
      grid_sweep(ctx, records, pool, &cache, &stats);
  EXPECT_TRUE(sweeps_equal(warm, cold));
  EXPECT_EQ(stats.cells_restored, 0u);
  EXPECT_EQ(stats.cells_computed, cold.cells.size());
}

TEST(EvalCache, EvalCellSerializerRoundTrips) {
  core::EvalCellArtifact cell;
  cell.model = "Llama-3.1-8B-Instruct";
  cell.condition = 3;
  cell.correct = 120;
  cell.total = 200;
  cell.unparseable = 4;
  const std::string blob = core::serialize_eval_cell(cell);
  const core::EvalCellArtifact back = core::deserialize_eval_cell(blob);
  EXPECT_EQ(back.model, cell.model);
  EXPECT_EQ(back.condition, cell.condition);
  EXPECT_EQ(back.correct, cell.correct);
  EXPECT_EQ(back.total, cell.total);
  EXPECT_EQ(back.unparseable, cell.unparseable);
  EXPECT_THROW(core::deserialize_eval_cell("ckbench1\n"), std::runtime_error);
}

// --- grid schedule simulator -------------------------------------------------

TEST(EvalEngine, GridSimulatorDeterministicAndOrdered) {
  const PipelineContext& ctx = test_context();
  const core::EvalGridModel model = core::eval_grid_model_from(
      ctx, ctx.benchmark(), ctx.students().size(), eval::all_conditions());
  ASSERT_EQ(model.retrieval.size(), eval::all_conditions().size());
  ASSERT_FALSE(model.answer.empty());
  EXPECT_TRUE(model.retrieval[0].empty());  // baseline never retrieves

  const double shared8 = core::simulated_grid_makespan(
      model, core::EvalGridMode::kSharedPlan, 8);
  EXPECT_EQ(shared8, core::simulated_grid_makespan(
                         model, core::EvalGridMode::kSharedPlan, 8));

  double prev_cell = 0.0;
  double prev_shared = 0.0;
  for (const std::size_t w : {1u, 2u, 4u, 8u}) {
    const double pc =
        core::simulated_grid_makespan(model, core::EvalGridMode::kPerCell, w);
    const double sp = core::simulated_grid_makespan(
        model, core::EvalGridMode::kSharedPlan, w);
    EXPECT_LE(sp, pc * 1.001) << "shared plan lost to per-cell at " << w;
    if (w > 1u) {
      EXPECT_LE(pc, prev_cell * 1.001);
      EXPECT_LE(sp, prev_shared * 1.001);
    }
    prev_cell = pc;
    prev_shared = sp;
  }
}

}  // namespace
