// Unit tests for reasoning-trace records and distillation.

#include <gtest/gtest.h>

#include <algorithm>

#include "corpus/fact_matcher.hpp"
#include "corpus/realization.hpp"
#include "llm/teacher_model.hpp"
#include "qgen/mcq_record.hpp"
#include "trace/trace_generator.hpp"
#include "trace/trace_record.hpp"

namespace mcqa::trace {
namespace {

const corpus::KnowledgeBase& test_kb() {
  static const corpus::KnowledgeBase kb = corpus::KnowledgeBase::generate(
      corpus::KbConfig{.facts_per_topic = 14, .seed = 41, .math_fraction = 0.4});
  return kb;
}

qgen::McqRecord sample_record(std::size_t fact_offset = 0) {
  const auto& kb = test_kb();
  const corpus::Fact& f = kb.facts()[fact_offset % kb.facts().size()];
  util::Rng rng(fact_offset + 1000);
  const corpus::QuestionRealization real =
      corpus::realize_question(kb, f, rng);

  qgen::McqRecord r;
  r.record_id = "q_trace_" + std::to_string(fact_offset);
  r.stem = real.stem;
  r.options.push_back(real.correct);
  for (const auto& d : real.distractors) r.options.push_back(d);
  r.correct_index = 0;
  r.answer = real.correct;
  r.question = qgen::McqRecord::render_question(r.stem, r.options);
  r.fact = f.id;
  r.math = real.math;
  r.key_principle = real.key_principle;
  return r;
}

TEST(TraceMode, NamesRoundTrip) {
  for (int m = 0; m < kTraceModeCount; ++m) {
    const auto mode = static_cast<TraceMode>(m);
    EXPECT_EQ(trace_mode_from_name(trace_mode_name(mode)), mode);
  }
  EXPECT_THROW(trace_mode_from_name("verbose"), std::invalid_argument);
}

class TraceGenAllModes : public ::testing::TestWithParam<TraceMode> {};

TEST_P(TraceGenAllModes, SchemaFieldsPopulated) {
  const corpus::FactMatcher matcher(test_kb());
  const llm::TeacherModel teacher(test_kb(), matcher);
  const TraceGenerator gen(teacher);
  const qgen::McqRecord record = sample_record(1);
  const TraceRecord t = gen.generate(record, GetParam());

  EXPECT_EQ(t.mode, GetParam());
  EXPECT_EQ(t.question, record.question);
  EXPECT_EQ(t.options, record.options);
  EXPECT_EQ(t.correct_answer_index, record.correct_index);
  EXPECT_EQ(t.correct_answer, record.answer);
  EXPECT_EQ(t.source_record_id, record.record_id);
  EXPECT_FALSE(t.prediction.predicted_answer.empty());
  EXPECT_FALSE(t.prediction.confidence_level.empty());

  switch (GetParam()) {
    case TraceMode::kDetailed:
      EXPECT_EQ(t.thought_process.size(), record.options.size());
      EXPECT_FALSE(t.scientific_conclusion.empty());
      break;
    case TraceMode::kFocused:
      EXPECT_FALSE(t.key_principle.empty());
      EXPECT_FALSE(t.dismissed_options.empty());
      EXPECT_FALSE(t.viable_options.empty());
      break;
    case TraceMode::kEfficient:
      EXPECT_FALSE(t.quick_analysis.empty());
      EXPECT_FALSE(t.elimination.empty());
      break;
  }
}

TEST_P(TraceGenAllModes, JsonRoundTrip) {
  const corpus::FactMatcher matcher(test_kb());
  const llm::TeacherModel teacher(test_kb(), matcher);
  const TraceGenerator gen(teacher);
  const TraceRecord t = gen.generate(sample_record(2), GetParam());
  const TraceRecord back = TraceRecord::from_json(t.to_json());
  EXPECT_EQ(back.trace_id, t.trace_id);
  EXPECT_EQ(back.mode, t.mode);
  EXPECT_EQ(back.question, t.question);
  EXPECT_EQ(back.options, t.options);
  EXPECT_EQ(back.correct_answer_index, t.correct_answer_index);
  EXPECT_EQ(back.thought_process, t.thought_process);
  EXPECT_EQ(back.key_principle, t.key_principle);
  EXPECT_EQ(back.dismissed_options, t.dismissed_options);
  EXPECT_EQ(back.viable_options, t.viable_options);
  EXPECT_EQ(back.quick_analysis, t.quick_analysis);
  EXPECT_EQ(back.elimination, t.elimination);
  EXPECT_EQ(back.prediction.predicted_answer, t.prediction.predicted_answer);
  EXPECT_EQ(back.retrieval_text(), t.retrieval_text());
}

TEST_P(TraceGenAllModes, RetrievalTextWithholdsAnswer) {
  const corpus::FactMatcher matcher(test_kb());
  const llm::TeacherModel teacher(test_kb(), matcher);
  const TraceGenerator gen(teacher);
  // Use a record whose options list doesn't leak into reasoning except
  // via dismissals: check the *prediction* sentinel is absent and the
  // correct answer is not announced as such.
  for (std::size_t i = 0; i < 6; ++i) {
    const qgen::McqRecord record = sample_record(i + 10);
    const TraceRecord t = gen.generate(record, GetParam());
    const std::string text = t.retrieval_text();
    EXPECT_EQ(text.find("predicted_answer"), std::string::npos);
    EXPECT_EQ(text.find(t.prediction.prediction_reasoning),
              std::string::npos);
    // The schema's answer declaration never appears in retrieval text.
    EXPECT_EQ(text.find("correct_answer"), std::string::npos);
  }
}

TEST_P(TraceGenAllModes, GradingBlockOptional) {
  const corpus::FactMatcher matcher(test_kb());
  const llm::TeacherModel teacher(test_kb(), matcher);
  const TraceGenerator gen(teacher);
  TraceRecord t = gen.generate(sample_record(3), GetParam());
  EXPECT_FALSE(t.has_grading);
  EXPECT_FALSE(t.to_json().as_object().contains("grading_result"));
  t.has_grading = true;
  t.grading.is_correct = true;
  t.grading.extracted_option_number = 1;
  t.grading.correct_option_number = 1;
  const TraceRecord back = TraceRecord::from_json(t.to_json());
  EXPECT_TRUE(back.has_grading);
  EXPECT_TRUE(back.grading.is_correct);
}

INSTANTIATE_TEST_SUITE_P(Modes, TraceGenAllModes,
                         ::testing::Values(TraceMode::kDetailed,
                                           TraceMode::kFocused,
                                           TraceMode::kEfficient),
                         [](const auto& info) {
                           return std::string(trace_mode_name(info.param));
                         });

TEST(TraceGen, DismissedOptionsAreWrongOptions) {
  const corpus::FactMatcher matcher(test_kb());
  const llm::TeacherModel teacher(test_kb(), matcher);
  const TraceGenerator gen(teacher);
  for (std::size_t i = 0; i < 8; ++i) {
    const qgen::McqRecord record = sample_record(i);
    const TraceRecord t = gen.generate(record, TraceMode::kFocused);
    for (const auto& dismissed : t.dismissed_options) {
      EXPECT_NE(dismissed, record.answer)
          << "trace dismissed the correct answer";
      EXPECT_NE(std::find(record.options.begin(), record.options.end(),
                          dismissed),
                record.options.end());
    }
    // The correct answer stays among viable options.
    EXPECT_NE(std::find(t.viable_options.begin(), t.viable_options.end(),
                        record.answer),
              t.viable_options.end());
  }
}

TEST(TraceGen, TraceCarriesTheProbedFact) {
  // The headline mechanism: a trace's retrieval text must contain the
  // fact its question probes (that's what makes traces a knowledge
  // transfer channel).
  const corpus::FactMatcher matcher(test_kb());
  const llm::TeacherModel teacher(test_kb(), matcher);
  const TraceGenerator gen(teacher);
  std::size_t carried = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    const qgen::McqRecord record = sample_record(i);
    for (int m = 0; m < kTraceModeCount; ++m) {
      const TraceRecord t = gen.generate(record, static_cast<TraceMode>(m));
      ++total;
      carried += matcher.contains(t.retrieval_text(), record.fact) ? 1 : 0;
    }
  }
  // Relational facts always carry; numeric-only stems may not, so allow
  // some slack.
  EXPECT_GT(carried * 10, total * 7);
}

TEST(TraceGen, GenerateAllParallelOrderStable) {
  const corpus::FactMatcher matcher(test_kb());
  const llm::TeacherModel teacher(test_kb(), matcher);
  std::vector<qgen::McqRecord> records;
  for (std::size_t i = 0; i < 24; ++i) records.push_back(sample_record(i));

  TraceGenConfig cfg1;
  cfg1.threads = 1;
  TraceGenConfig cfg4;
  cfg4.threads = 4;
  const auto a = TraceGenerator(teacher, cfg1).generate_all(
      records, TraceMode::kDetailed);
  const auto b = TraceGenerator(teacher, cfg4).generate_all(
      records, TraceMode::kDetailed);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].trace_id, b[i].trace_id);
    EXPECT_EQ(a[i].retrieval_text(), b[i].retrieval_text());
  }
}

TEST(TraceGen, TraceIdEncodesProvenance) {
  const corpus::FactMatcher matcher(test_kb());
  const llm::TeacherModel teacher(test_kb(), matcher);
  const TraceGenerator gen(teacher);
  const qgen::McqRecord record = sample_record(5);
  const TraceRecord t = gen.generate(record, TraceMode::kEfficient);
  EXPECT_NE(t.trace_id.find("efficient"), std::string::npos);
  EXPECT_NE(t.trace_id.find(record.record_id), std::string::npos);
}

}  // namespace
}  // namespace mcqa::trace
