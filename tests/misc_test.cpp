// Remaining small-surface tests: logging, stopwatch, report edge cases,
// registry-wide consistency checks.

#include <gtest/gtest.h>

#include <thread>

#include "eval/report.hpp"
#include "llm/model_spec.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace mcqa {
namespace {

TEST(Log, LevelThresholding) {
  const util::LogLevel before = util::log_level();
  util::set_log_level(util::LogLevel::kError);
  EXPECT_EQ(util::log_level(), util::LogLevel::kError);
  // Below-threshold emission must be a cheap no-op (no crash, no output
  // assertion possible here, but the call path is exercised).
  MCQA_DEBUG("test") << "dropped";
  MCQA_INFO("test") << "dropped";
  util::set_log_level(util::LogLevel::kOff);
  MCQA_ERROR("test") << "also dropped at kOff";
  util::set_log_level(before);
}

TEST(Log, ConcurrentEmissionIsSafe) {
  const util::LogLevel before = util::log_level();
  util::set_log_level(util::LogLevel::kOff);  // exercise path, mute sink
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 100; ++i) {
        util::log_line(util::LogLevel::kInfo, "thread", "message");
      }
    });
  }
  for (auto& t : threads) t.join();
  util::set_log_level(before);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  util::Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(watch.millis(), 15.0);
  EXPECT_LT(watch.seconds(), 5.0);
  watch.reset();
  EXPECT_LT(watch.millis(), 15.0);
}

TEST(Report, EmptyTableRenders) {
  eval::TableWriter t({"A"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| A"), std::string::npos);
}

TEST(Report, GroupedBarsEmptySeries) {
  const std::string out =
      eval::render_grouped_bars({}, {}, "Empty figure");
  EXPECT_NE(out.find("Empty figure"), std::string::npos);
}

TEST(Report, GroupedBarsClampsExtremeValues) {
  const std::vector<eval::FigureSeries> series{{"s", {100000.0}}};
  const std::string out =
      eval::render_grouped_bars({"m"}, series, "Clamped", 2.0);
  // Bar length is clamped; the label still shows the real value.
  EXPECT_NE(out.find("+100000.0%"), std::string::npos);
  EXPECT_LT(out.size(), 400u);
}

TEST(Registry, ParamsCoverPaperRange) {
  // Paper: "1.1B-14B parameters".
  double lo = 1e9;
  double hi = 0.0;
  for (const auto& card : llm::student_registry()) {
    lo = std::min(lo, card.spec.params_billions);
    hi = std::max(hi, card.spec.params_billions);
  }
  EXPECT_DOUBLE_EQ(lo, 1.1);
  EXPECT_DOUBLE_EQ(hi, 14.0);
}

TEST(Registry, SmallWindowsMatchPaperDiscussion) {
  // OLMo and TinyLlama are the paper's 2K-window models.
  std::size_t small_windows = 0;
  for (const auto& card : llm::student_registry()) {
    small_windows += card.spec.context_window == 2048 ? 1 : 0;
  }
  EXPECT_EQ(small_windows, 2u);
}

TEST(Registry, Gpt4ReferenceIsPlausibleAccuracy) {
  EXPECT_GT(llm::kGpt4AstroReference, 0.5);
  EXPECT_LT(llm::kGpt4AstroReference, 1.0);
}

}  // namespace
}  // namespace mcqa
