// Incremental build + delta-eval contract (DESIGN.md §17):
//
//  * editing K of N documents yields artifacts byte-identical to a cold
//    rebuild, at any thread count, while restoring exactly the N-K
//    untouched per-document artifacts and recomputing exactly K;
//  * corrupt per-document blobs are recomputed silently (and counted);
//  * prune_cache keeps the current manifest's blobs reachable — a warm
//    run after pruning restores everything;
//  * the grouped (delta) eval sweep is bitwise-identical to the plain
//    grid and restores unchanged groups instead of re-answering them.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/eval_cache.hpp"
#include "core/pipeline.hpp"
#include "corpus/corpus_builder.hpp"
#include "corpus/knowledge_base.hpp"
#include "eval/harness.hpp"
#include "util/hash.hpp"

namespace {

using namespace mcqa;
using core::ExecutionMode;
using core::PipelineConfig;
using core::PipelineContext;

constexpr double kTestScale = 0.008;
constexpr std::size_t kEdits = 7;

PipelineConfig test_config(std::size_t threads,
                           std::string checkpoint_dir = {}) {
  PipelineConfig cfg = PipelineConfig::paper_scale(kTestScale);
  cfg.execution = ExecutionMode::kOverlapped;
  cfg.threads = threads;
  cfg.checkpoint_dir = std::move(checkpoint_dir);
  return cfg;
}

PipelineConfig edited_config(const PipelineConfig& base, std::size_t count,
                             std::uint64_t revision) {
  PipelineConfig cfg = base;
  cfg.corpus.edits.count = count;
  cfg.corpus.edits.revision = revision;
  return cfg;
}

/// Same artifact digest as executor_test: byte equality of the digest
/// is byte equality of every build artifact.
std::uint64_t artifact_digest(const PipelineContext& ctx) {
  const auto& s = ctx.stats();
  core::ParsedArtifact parsed{ctx.parsed(), s.routing, s.parse_failures,
                              s.documents};
  core::BenchmarkArtifact bench{ctx.benchmark(), s.funnel};
  std::uint64_t h = util::fnv1a64(core::serialize_parsed(parsed));
  h = util::hash_combine(h, util::fnv1a64(core::serialize_chunks(ctx.chunks())));
  h = util::hash_combine(h, util::fnv1a64(ctx.chunk_store().save()));
  h = util::hash_combine(h, util::fnv1a64(core::serialize_benchmark(bench)));
  for (int m = 0; m < trace::kTraceModeCount; ++m) {
    const auto mode = static_cast<trace::TraceMode>(m);
    const auto mi = static_cast<std::size_t>(m);
    core::TraceArtifact traces{ctx.traces(mode), {}};
    h = util::hash_combine(h, util::fnv1a64(core::serialize_traces(traces)));
    h = util::hash_combine(h, util::fnv1a64(ctx.trace_store(mode).save()));
    h = util::hash_combine(h, util::fnv1a64(s.traces_per_mode[mi]));
  }
  return h;
}

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    path = std::filesystem::temp_directory_path() /
           ("mcqa-incr-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter()++));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  static std::atomic<int>& counter() {
    static std::atomic<int> c{0};
    return c;
  }
};

void copy_dir(const std::filesystem::path& from,
              const std::filesystem::path& to) {
  std::filesystem::copy(from, to,
                        std::filesystem::copy_options::recursive |
                            std::filesystem::copy_options::overwrite_existing);
}

// --- edit-K-of-N byte identity + restore accounting --------------------------

TEST(IncrementalBuild, EditKOfNMatchesColdAtAnyThreadCount) {
  const TempDir dir;
  const PipelineContext cold(test_config(2, dir.path.string()));
  const std::size_t n = cold.stats().documents;
  ASSERT_GT(n, kEdits);
  EXPECT_EQ(cold.stats().doc_artifacts_restored, 0u);
  EXPECT_EQ(cold.stats().doc_artifacts_recomputed, n);

  // The ground truth for the edited corpus: a from-scratch build with
  // no cache at all.
  const auto edited = edited_config(test_config(2), kEdits, 1);
  const std::uint64_t reference = artifact_digest(PipelineContext(edited));

  for (const std::size_t threads : {1u, 2u, 8u}) {
    // Each thread count gets its own copy of the cold cache so the
    // restore counters stay exact (a shared directory would warm up).
    const TempDir copy;
    copy_dir(dir.path, copy.path);
    auto cfg = edited_config(test_config(threads, copy.path.string()),
                             kEdits, 1);
    const PipelineContext incr(cfg);
    EXPECT_EQ(artifact_digest(incr), reference)
        << "incremental build diverged at " << threads << " threads";
    EXPECT_EQ(incr.stats().doc_artifacts_restored, n - kEdits);
    EXPECT_EQ(incr.stats().doc_artifacts_recomputed, kEdits);
    EXPECT_EQ(incr.stats().checkpoint_corrupt, 0u);
  }
}

TEST(IncrementalBuild, NoEditWarmRunRestoresEverything) {
  const TempDir dir;
  const auto cfg = test_config(2, dir.path.string());
  const PipelineContext cold(cfg);
  const PipelineContext warm(cfg);
  EXPECT_EQ(warm.stats().doc_artifacts_restored, cold.stats().documents);
  EXPECT_EQ(warm.stats().doc_artifacts_recomputed, 0u);
  EXPECT_EQ(warm.stats().checkpoint_misses, 0u);
  EXPECT_EQ(artifact_digest(warm), artifact_digest(cold));
}

TEST(IncrementalBuild, IvfPqDeltaStaysExactUnderFrozenCodebooks) {
  // With an IVF-PQ index, the K-edit rebuild re-encodes against the
  // previous revision's codebooks (changed fraction << threshold).
  // Query results must stay exact — artifact byte identity of the
  // benchmark/traces plus search identity is asserted by comparing to
  // the no-cache rebuild, whose stores retrained from scratch.
  const TempDir dir;
  auto base = test_config(2, dir.path.string());
  base.index_kind = index::IndexKind::kIvfPq;
  const PipelineContext cold(base);
  const std::size_t n = cold.stats().documents;

  auto edited = edited_config(base, kEdits, 1);
  const PipelineContext incr(edited);
  EXPECT_EQ(incr.stats().doc_artifacts_restored, n - kEdits);
  EXPECT_EQ(incr.stats().doc_artifacts_recomputed, kEdits);

  auto fresh = edited;
  fresh.checkpoint_dir.clear();
  const PipelineContext cold2(fresh);

  // Record/trace artifacts are byte-identical; the stores answer
  // identically (exact-rerank contract) even though their saved bytes
  // may differ under frozen codebooks.
  core::BenchmarkArtifact a{incr.benchmark(), incr.stats().funnel};
  core::BenchmarkArtifact b{cold2.benchmark(), cold2.stats().funnel};
  EXPECT_EQ(core::serialize_benchmark(a), core::serialize_benchmark(b));
  const std::string& probe = incr.chunk_store().text_of(0);
  const auto got = incr.chunk_store().query(probe, 5);
  const auto want = cold2.chunk_store().query(probe, 5);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id);
    EXPECT_FLOAT_EQ(got[i].score, want[i].score);
  }
}

TEST(IncrementalBuild, CorruptDocartRecomputesSilently) {
  const TempDir dir;
  const auto cfg = test_config(2, dir.path.string());
  const PipelineContext cold(cfg);
  const std::uint64_t reference = artifact_digest(cold);

  // Truncate a handful of per-document blobs.
  std::size_t corrupted = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    if (entry.path().filename().string().rfind("docart-", 0) != 0) continue;
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out << "ckdoc1\n";
    if (++corrupted == 3) break;
  }
  ASSERT_EQ(corrupted, 3u);

  const PipelineContext warm(cfg);
  EXPECT_EQ(artifact_digest(warm), reference);
  EXPECT_GE(warm.stats().checkpoint_corrupt, 3u);
  EXPECT_EQ(warm.stats().doc_artifacts_recomputed, 3u);
  EXPECT_EQ(warm.stats().doc_artifacts_restored,
            cold.stats().documents - 3u);
}

// --- per-document keys -------------------------------------------------------

TEST(IncrementalKeys, DocKeysChangeOnlyForEditedDocs) {
  const auto base = test_config(1);
  const auto edited = edited_config(base, kEdits, 1);
  const corpus::KnowledgeBase kb = corpus::KnowledgeBase::generate(base.kb);
  const corpus::SyntheticCorpus c0 = corpus::build_corpus(kb, base.corpus);
  const corpus::SyntheticCorpus c1 = corpus::build_corpus(kb, edited.corpus);
  ASSERT_EQ(c0.documents.size(), c1.documents.size());

  const auto k0 = core::derive_doc_keys(base, c0, 256);
  const auto k1 = core::derive_doc_keys(edited, c1, 256);
  const auto changed =
      corpus::edited_doc_indexes(edited.corpus, c1.documents.size());
  ASSERT_EQ(changed.size(), kEdits);

  std::size_t diff = 0;
  for (std::size_t i = 0; i < k0.size(); ++i) {
    if (k0[i] != k1[i]) ++diff;
  }
  EXPECT_EQ(diff, kEdits);
  for (const std::size_t i : changed) EXPECT_NE(k0[i], k1[i]);

  // Revisions of the same family share a manifest slot; a config
  // change does not.
  EXPECT_EQ(core::derive_manifest_key(base, 256),
            core::derive_manifest_key(edited, 256));
  auto other = base;
  other.chunker.target_words += 10;
  EXPECT_NE(core::derive_manifest_key(base, 256),
            core::derive_manifest_key(other, 256));
}

// --- prune -------------------------------------------------------------------

TEST(IncrementalCache, PruneDropsStaleRevisionsKeepsCurrent) {
  const TempDir dir;
  const auto base = test_config(2, dir.path.string());
  const PipelineContext cold(base);

  // Revision 1 leaves revision 0's edited-doc artifacts and store
  // blobs stranded in the directory.
  const auto edited = edited_config(base, kEdits, 1);
  const PipelineContext incr(edited);

  const core::ArtifactCache cache(dir.path.string());
  const std::uint64_t manifest_key =
      core::derive_manifest_key(edited, incr.embedder().dim());
  const auto blob = cache.load("manifest", manifest_key);
  ASSERT_TRUE(blob.has_value());
  const core::ManifestArtifact manifest = core::deserialize_manifest(*blob);
  ASSERT_EQ(manifest.doc_keys.size(), incr.stats().documents);

  const core::PruneReport report =
      core::prune_cache(dir.path.string(), manifest, manifest_key);
  EXPECT_GT(report.removed, 0u);  // the stranded revision-0 blobs
  EXPECT_GT(report.kept, 0u);

  // Everything the pruned cache kept is sufficient for a full restore.
  const PipelineContext warm(edited);
  EXPECT_EQ(warm.stats().doc_artifacts_recomputed, 0u);
  EXPECT_EQ(warm.stats().doc_artifacts_restored, incr.stats().documents);
  EXPECT_EQ(artifact_digest(warm), artifact_digest(incr));

  // Pruning is deterministic: a second sweep finds nothing to remove.
  const core::PruneReport again =
      core::prune_cache(dir.path.string(), manifest, manifest_key);
  EXPECT_EQ(again.removed, 0u);
}

// --- delta eval --------------------------------------------------------------

bool sweeps_equal(const eval::SweepResult& a, const eval::SweepResult& b) {
  if (a.cells.size() != b.cells.size()) return false;
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    if (a.cells[i].model != b.cells[i].model) return false;
    if (a.cells[i].condition != b.cells[i].condition) return false;
    if (a.cells[i].accuracy.correct != b.cells[i].accuracy.correct)
      return false;
    if (a.cells[i].accuracy.total != b.cells[i].accuracy.total) return false;
    if (a.cells[i].accuracy.unparseable != b.cells[i].accuracy.unparseable)
      return false;
  }
  return true;
}

TEST(IncrementalEval, GroupedSweepMatchesPlainAndRestoresGroups) {
  const PipelineContext ctx(test_config(2));
  const auto& records = ctx.benchmark();
  ASSERT_FALSE(records.empty());

  // Two models keep the grid small; all five conditions.
  const auto all_models = ctx.student_ptrs();
  const auto all_specs = ctx.student_specs();
  const std::vector<const llm::LanguageModel*> models(all_models.begin(),
                                                      all_models.begin() + 2);
  const std::vector<llm::ModelSpec> specs(all_specs.begin(),
                                          all_specs.begin() + 2);
  const auto conditions = eval::all_conditions();

  const eval::EvalHarness plain(ctx.rag(), {.threads = 2});
  const eval::SweepResult reference =
      plain.sweep(models, specs, records, conditions);

  const std::vector<eval::RecordGroup> groups =
      core::record_groups(ctx, records);
  ASSERT_GT(groups.size(), 1u);

  const TempDir dir;
  const std::uint64_t sweep_key = core::EvalCellCache::sweep_key(ctx, records);
  const std::uint64_t group_base = core::EvalCellCache::group_base_key(ctx);

  // Cold grouped sweep: every group computed, result identical.
  {
    const core::EvalCellCache cache(dir.path.string(), sweep_key, group_base);
    ASSERT_TRUE(cache.supports_groups());
    eval::HarnessConfig hc;
    hc.threads = 2;
    hc.cell_cache = &cache;
    hc.groups = &groups;
    const eval::EvalHarness harness(ctx.rag(), hc);
    eval::SweepStats stats;
    const auto cold = harness.sweep(models, specs, records, conditions, &stats);
    EXPECT_TRUE(sweeps_equal(cold, reference));
    EXPECT_EQ(stats.groups_restored, 0u);
    EXPECT_EQ(stats.groups_computed,
              groups.size() * models.size() * conditions.size());
    EXPECT_EQ(stats.records_evaluated,
              records.size() * models.size() * conditions.size());
  }

  // A different sweep key (e.g. the swept subset changed) misses every
  // cell, but the group tier — keyed by content+hits, not by the sweep
  // — restores everything: zero records re-answered.
  for (const std::size_t threads : {1u, 2u, 8u}) {
    // A distinct sweep key per run: completed cells from the previous
    // iteration must not short-circuit the group tier under test.
    const core::EvalCellCache cache(dir.path.string(),
                                    sweep_key ^ (0x5a5au + threads),
                                    group_base);
    eval::HarnessConfig hc;
    hc.threads = threads;
    hc.cell_cache = &cache;
    hc.groups = &groups;
    const eval::EvalHarness harness(ctx.rag(), hc);
    eval::SweepStats stats;
    const auto warm = harness.sweep(models, specs, records, conditions, &stats);
    EXPECT_TRUE(sweeps_equal(warm, reference))
        << "grouped sweep diverged at " << threads << " threads";
    EXPECT_EQ(stats.cells_restored, 0u);
    EXPECT_EQ(stats.groups_computed, 0u);
    EXPECT_EQ(stats.records_evaluated, 0u);
    EXPECT_EQ(stats.groups_restored,
              groups.size() * models.size() * conditions.size());
  }
}

TEST(IncrementalEval, GroupsPartitionTheRecordSet) {
  const PipelineContext ctx(test_config(2));
  const auto& records = ctx.benchmark();
  const auto groups = core::record_groups(ctx, records);
  std::vector<char> seen(records.size(), 0);
  for (const auto& g : groups) {
    EXPECT_NE(g.content_fp, 0u);
    for (const std::size_t i : g.indexes) {
      ASSERT_LT(i, records.size());
      EXPECT_EQ(seen[i], 0);
      seen[i] = 1;
    }
  }
  for (const char s : seen) EXPECT_EQ(s, 1);

  // Exam records are not part of the chunk table: singleton groups.
  const auto exam_groups = core::record_groups(ctx, ctx.exam_all());
  EXPECT_EQ(exam_groups.size(), ctx.exam_all().size());
}

}  // namespace
