// Executor + checkpoint determinism contract:
//
//  * staged and overlapped builds produce byte-identical artifacts at
//    any thread count, with the embedding cache on or off;
//  * a checkpoint-restored context is byte-identical to the cold build
//    that populated the cache, and staged/overlapped share cache keys;
//  * the virtual-time schedule simulator is deterministic and shows the
//    structural ordering the bench relies on.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/checkpoint.hpp"
#include "core/executor.hpp"
#include "core/pipeline.hpp"
#include "parallel/dag.hpp"
#include "util/hash.hpp"

namespace {

using namespace mcqa;
using core::ArtifactCache;
using core::ExecutionMode;
using core::PipelineConfig;
using core::PipelineContext;

constexpr double kTestScale = 0.008;

PipelineConfig test_config(ExecutionMode mode, std::size_t threads,
                           bool embed_cache = true,
                           std::string checkpoint_dir = {}) {
  PipelineConfig cfg = PipelineConfig::paper_scale(kTestScale);
  cfg.execution = mode;
  cfg.threads = threads;
  cfg.embed_cache = embed_cache;
  cfg.checkpoint_dir = std::move(checkpoint_dir);
  return cfg;
}

/// One digest over every artifact the build produces, via the same
/// serializers the checkpoint uses — byte equality of the digest is
/// byte equality of the artifacts.
std::uint64_t artifact_digest(const PipelineContext& ctx) {
  const auto& s = ctx.stats();
  core::ParsedArtifact parsed{ctx.parsed(), s.routing, s.parse_failures,
                              s.documents};
  core::BenchmarkArtifact bench{ctx.benchmark(), s.funnel};
  std::uint64_t h = util::fnv1a64(core::serialize_parsed(parsed));
  h = util::hash_combine(h, util::fnv1a64(core::serialize_chunks(ctx.chunks())));
  h = util::hash_combine(h, util::fnv1a64(ctx.chunk_store().save()));
  h = util::hash_combine(h, util::fnv1a64(core::serialize_benchmark(bench)));
  for (int m = 0; m < trace::kTraceModeCount; ++m) {
    const auto mode = static_cast<trace::TraceMode>(m);
    const auto mi = static_cast<std::size_t>(m);
    core::TraceArtifact traces{ctx.traces(mode), {}};
    h = util::hash_combine(h, util::fnv1a64(core::serialize_traces(traces)));
    h = util::hash_combine(h, util::fnv1a64(ctx.trace_store(mode).save()));
    h = util::hash_combine(h, util::fnv1a64(s.traces_per_mode[mi]));
  }
  return h;
}

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    path = std::filesystem::temp_directory_path() /
           ("mcqa-exec-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter()++));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  static std::atomic<int>& counter() {
    static std::atomic<int> c{0};
    return c;
  }
};

// --- staged vs overlapped byte identity --------------------------------------

std::uint64_t baseline_digest() {
  static const std::uint64_t digest = [] {
    const PipelineContext ctx(test_config(ExecutionMode::kStaged, 2));
    return artifact_digest(ctx);
  }();
  return digest;
}

TEST(Executor, OverlappedMatchesStagedAcrossThreadCounts) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const PipelineContext ctx(
        test_config(ExecutionMode::kOverlapped, threads));
    EXPECT_EQ(artifact_digest(ctx), baseline_digest())
        << "overlapped build diverged at " << threads << " threads";
  }
}

TEST(Executor, EmbedCacheDoesNotChangeArtifacts) {
  const PipelineContext staged(
      test_config(ExecutionMode::kStaged, 8, /*embed_cache=*/false));
  EXPECT_EQ(artifact_digest(staged), baseline_digest());
  const PipelineContext overlapped(
      test_config(ExecutionMode::kOverlapped, 4, /*embed_cache=*/false));
  EXPECT_EQ(artifact_digest(overlapped), baseline_digest());
}

TEST(Executor, PerModeStatsAreIndependent) {
  const PipelineContext ctx(test_config(ExecutionMode::kOverlapped, 2));
  const auto& s = ctx.stats();
  for (int m = 0; m < trace::kTraceModeCount; ++m) {
    const auto mi = static_cast<std::size_t>(m);
    EXPECT_EQ(s.traces_per_mode[mi],
              ctx.traces(static_cast<trace::TraceMode>(m)).size());
    EXPECT_GT(s.trace_grading_accuracy[mi], 0.0);
    EXPECT_LE(s.trace_grading_accuracy[mi], 1.0);
  }
}

// --- checkpoint restore ------------------------------------------------------

TEST(Checkpoint, WarmRestoreIsByteIdentical) {
  const TempDir dir;
  const auto cold_cfg =
      test_config(ExecutionMode::kOverlapped, 2, true, dir.path.string());
  const PipelineContext cold(cold_cfg);
  EXPECT_EQ(cold.stats().checkpoint_hits, 0u);
  EXPECT_GT(cold.stats().checkpoint_misses, 0u);
  EXPECT_EQ(artifact_digest(cold), baseline_digest());

  const PipelineContext warm(cold_cfg);
  EXPECT_GT(warm.stats().checkpoint_hits, 0u);
  EXPECT_EQ(warm.stats().checkpoint_misses, 0u);
  EXPECT_EQ(artifact_digest(warm), baseline_digest());
  // Restored stats blocks match the cold build's.
  EXPECT_EQ(warm.stats().documents, cold.stats().documents);
  EXPECT_EQ(warm.stats().parse_failures, cold.stats().parse_failures);
  EXPECT_EQ(warm.stats().funnel.candidates, cold.stats().funnel.candidates);
  EXPECT_EQ(warm.stats().routing.fast_routed, cold.stats().routing.fast_routed);
  for (std::size_t m = 0; m < warm.stats().traces_per_mode.size(); ++m) {
    EXPECT_EQ(warm.stats().traces_per_mode[m], cold.stats().traces_per_mode[m]);
    EXPECT_DOUBLE_EQ(warm.stats().trace_grading_accuracy[m],
                     cold.stats().trace_grading_accuracy[m]);
  }
}

TEST(Checkpoint, StagedAndOverlappedShareCacheEntries) {
  const TempDir dir;
  // Cold-build staged, then warm-load with an overlapped config: the
  // execution mode is not part of the key, so the cache must hit.
  const PipelineContext cold(
      test_config(ExecutionMode::kStaged, 1, true, dir.path.string()));
  const PipelineContext warm(
      test_config(ExecutionMode::kOverlapped, 8, false, dir.path.string()));
  EXPECT_GT(warm.stats().checkpoint_hits, 0u);
  EXPECT_EQ(warm.stats().checkpoint_misses, 0u);
  EXPECT_EQ(artifact_digest(warm), artifact_digest(cold));
}

TEST(Checkpoint, ConfigChangeMissesAndRebuilds) {
  const TempDir dir;
  auto cfg = test_config(ExecutionMode::kOverlapped, 2, true,
                         dir.path.string());
  const PipelineContext cold(cfg);
  cfg.builder.quality_threshold += 0.5;  // new benchmark key chain
  const PipelineContext rebuilt(cfg);
  // Upstream artifacts (parsed, chunks, chunk store) still hit.
  EXPECT_GT(rebuilt.stats().checkpoint_misses, 0u);
  EXPECT_NE(artifact_digest(rebuilt), artifact_digest(cold));
}

TEST(Checkpoint, CorruptBlobFallsBackToBuild) {
  const TempDir dir;
  const auto cfg =
      test_config(ExecutionMode::kOverlapped, 2, true, dir.path.string());
  const PipelineContext cold(cfg);
  // Truncate every cached blob; the warm path must rebuild, not crash.
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out << "ckparse1\n";
  }
  const PipelineContext warm(cfg);
  EXPECT_EQ(artifact_digest(warm), artifact_digest(cold));
}

TEST(Checkpoint, UnknownIndexKindFallsBackToBuild) {
  const TempDir dir;
  const auto cfg =
      test_config(ExecutionMode::kOverlapped, 2, true, dir.path.string());
  const PipelineContext cold(cfg);
  // Rewrite every index-blob magic inside the cached artifacts to an
  // unrecognized kind — the version-stamped loaders must reject it, and
  // the warm path must fall into the corrupt-blob rebuild, not crash.
  bool rewrote = false;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    bool changed = false;
    for (const std::string_view magic :
         {"flatidx", "ivfidx", "hnswidx", "sq8idx", "ivfpqidx"}) {
      for (auto pos = bytes.find(magic); pos != std::string::npos;
           pos = bytes.find(magic, pos + 1)) {
        bytes.replace(pos, 3, "zzz");
        changed = true;
      }
    }
    if (changed) {
      std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      rewrote = true;
    }
  }
  ASSERT_TRUE(rewrote);  // trace-store artifacts embed index blobs
  const PipelineContext warm(cfg);
  EXPECT_EQ(artifact_digest(warm), artifact_digest(cold));
}

TEST(Checkpoint, KeysIgnoreSpeedKnobsButTrackConfig) {
  const auto base = test_config(ExecutionMode::kStaged, 1);
  const auto keys = core::derive_checkpoint_keys(base, 256);

  auto speed = base;
  speed.threads = 8;
  speed.embed_cache = false;
  speed.execution = ExecutionMode::kOverlapped;
  const auto speed_keys = core::derive_checkpoint_keys(speed, 256);
  EXPECT_EQ(keys.parsed, speed_keys.parsed);
  EXPECT_EQ(keys.chunks, speed_keys.chunks);
  EXPECT_EQ(keys.benchmark, speed_keys.benchmark);
  EXPECT_EQ(keys.traces, speed_keys.traces);

  auto changed = base;
  changed.chunker.target_words += 10;
  const auto changed_keys = core::derive_checkpoint_keys(changed, 256);
  EXPECT_EQ(keys.parsed, changed_keys.parsed);  // upstream unaffected
  EXPECT_NE(keys.chunks, changed_keys.chunks);
  EXPECT_NE(keys.benchmark, changed_keys.benchmark);  // chained downstream
  EXPECT_NE(keys.trace_stores, changed_keys.trace_stores);

  auto dim = core::derive_checkpoint_keys(base, 128);
  EXPECT_NE(keys.chunks, dim.chunks);
}

TEST(Checkpoint, ArtifactCacheRoundTrip) {
  const TempDir dir;
  const ArtifactCache cache(dir.path.string());
  EXPECT_FALSE(cache.load("thing", 42).has_value());
  cache.store("thing", 42, "payload-bytes");
  const auto blob = cache.load("thing", 42);
  ASSERT_TRUE(blob.has_value());
  EXPECT_EQ(*blob, "payload-bytes");
  EXPECT_FALSE(cache.load("thing", 43).has_value());
  EXPECT_FALSE(cache.load("other", 42).has_value());
}

TEST(Checkpoint, SerializersRoundTrip) {
  const PipelineContext& ctx = [] () -> const PipelineContext& {
    static const PipelineContext c(test_config(ExecutionMode::kStaged, 2));
    return c;
  }();
  const auto& s = ctx.stats();

  core::ParsedArtifact parsed{ctx.parsed(), s.routing, s.parse_failures,
                              s.documents};
  const std::string parsed_blob = core::serialize_parsed(parsed);
  EXPECT_EQ(core::serialize_parsed(core::deserialize_parsed(parsed_blob)),
            parsed_blob);

  const std::string chunks_blob = core::serialize_chunks(ctx.chunks());
  EXPECT_EQ(core::serialize_chunks(core::deserialize_chunks(chunks_blob)),
            chunks_blob);

  core::BenchmarkArtifact bench{ctx.benchmark(), s.funnel};
  const std::string bench_blob = core::serialize_benchmark(bench);
  EXPECT_EQ(
      core::serialize_benchmark(core::deserialize_benchmark(bench_blob)),
      bench_blob);

  core::TraceArtifact traces{ctx.traces(trace::TraceMode::kDetailed), {}};
  const std::string traces_blob = core::serialize_traces(traces);
  EXPECT_EQ(core::serialize_traces(core::deserialize_traces(traces_blob)),
            traces_blob);

  EXPECT_THROW(core::deserialize_parsed("ckchunk1\n"), std::runtime_error);
  EXPECT_THROW(core::deserialize_chunks("ckchunk1\n garbage"),
               std::runtime_error);
}

// --- schedule simulator ------------------------------------------------------

TEST(ScheduleSim, DeterministicAndStructurallyOrdered) {
  const PipelineContext ctx(test_config(ExecutionMode::kOverlapped, 2));
  const core::ScheduleModel model = core::schedule_model_from(ctx);
  ASSERT_FALSE(model.docs.empty());
  ASSERT_FALSE(model.chunks.empty());
  ASSERT_FALSE(model.records.empty());

  const double staged8 =
      core::simulated_makespan(model, ExecutionMode::kStaged, 8);
  EXPECT_EQ(staged8, core::simulated_makespan(model, ExecutionMode::kStaged, 8))
      << "simulator must be deterministic";

  // More workers never hurt, and overlap never loses to barriers.
  double prev_staged = 0.0;
  double prev_over = 0.0;
  for (const std::size_t w : {1u, 2u, 4u, 8u}) {
    const double st = core::simulated_makespan(model, ExecutionMode::kStaged, w);
    const double ov =
        core::simulated_makespan(model, ExecutionMode::kOverlapped, w);
    EXPECT_LE(ov, st * 1.001) << "overlap lost to barriers at " << w;
    if (w > 1u) {
      EXPECT_LE(st, prev_staged * 1.001);
      EXPECT_LE(ov, prev_over * 1.001);
    }
    prev_staged = st;
    prev_over = ov;
  }

  // Equal total work at one worker: the schedules only rearrange tasks.
  const double staged1 =
      core::simulated_makespan(model, ExecutionMode::kStaged, 1);
  const double over1 =
      core::simulated_makespan(model, ExecutionMode::kOverlapped, 1);
  EXPECT_NEAR(over1 / staged1, 1.0, 0.05);
}

// --- dynamic task groups -----------------------------------------------------

TEST(TaskGroup, DrainsNestedSpawns) {
  parallel::ThreadPool pool(4);
  std::atomic<int> count{0};
  {
    parallel::TaskGroup group(pool);
    for (int i = 0; i < 16; ++i) {
      group.spawn([&group, &count]() {
        count.fetch_add(1);
        group.spawn([&group, &count]() {
          count.fetch_add(1);
          group.spawn([&count]() { count.fetch_add(1); });
        });
      });
    }
    group.wait();
    EXPECT_EQ(count.load(), 48);
  }
}

TEST(TaskGroup, WaitOnEmptyGroupReturns) {
  parallel::ThreadPool pool(2);
  parallel::TaskGroup group(pool);
  group.wait();
  SUCCEED();
}

}  // namespace
