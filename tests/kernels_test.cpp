// Tests for the blocked similarity-kernel layer: bit-exact equivalence
// against a reference implementation of the fixed lane order, bounded
// top-k selection, batched search identity across thread counts, and
// the contiguous-storage save/load formats.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>

#include "embed/hashed_embedder.hpp"
#include "index/kernels.hpp"
#include "index/row_storage.hpp"
#include "index/vector_index.hpp"
#include "index/vector_store.hpp"
#include "parallel/thread_pool.hpp"
#include "util/fp16.hpp"
#include "util/rng.hpp"

namespace mcqa::index {
namespace {

// --- reference implementations of the determinism contract -------------------
// Written independently of kernels.cpp: 8 lanes, lane l takes elements
// l, l+8, ...; combined as ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)).

float ref_dot(const float* a, const float* b, std::size_t n) {
  float lane[8] = {};
  for (std::size_t i = 0; i < n; ++i) lane[i % 8] += a[i] * b[i];
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

float ref_l2_sq(const float* a, const float* b, std::size_t n) {
  float lane[8] = {};
  for (std::size_t i = 0; i < n; ++i) {
    const float d = a[i] - b[i];
    lane[i % 8] += d * d;
  }
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

std::vector<float> random_row(std::size_t n, util::Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

std::vector<embed::Vector> random_unit_vectors(std::size_t n, std::size_t dim,
                                               std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<embed::Vector> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    embed::Vector v(dim);
    for (auto& x : v) x = static_cast<float>(rng.normal());
    embed::normalize(v);
    out.push_back(std::move(v));
  }
  return out;
}

void expect_bit_equal(float got, float want, std::size_t n) {
  EXPECT_EQ(std::bit_cast<std::uint32_t>(got),
            std::bit_cast<std::uint32_t>(want))
      << "n=" << n << " got=" << got << " want=" << want;
}

// Dims below, at, and off the 8-float lane width, odd dims, and a
// PubMedBERT-sized row.
const std::size_t kDims[] = {1, 2, 3, 5, 7, 8, 9, 15, 16, 17,
                             31, 63, 255, 256, 768};

TEST(Kernels, DotBitIdenticalToReferenceLaneOrder) {
  util::Rng rng(11);
  for (const std::size_t n : kDims) {
    const auto a = random_row(n, rng);
    const auto b = random_row(n, rng);
    expect_bit_equal(kernels::dot(a.data(), b.data(), n),
                     ref_dot(a.data(), b.data(), n), n);
  }
}

TEST(Kernels, L2BitIdenticalToReferenceLaneOrder) {
  util::Rng rng(12);
  for (const std::size_t n : kDims) {
    const auto a = random_row(n, rng);
    const auto b = random_row(n, rng);
    expect_bit_equal(kernels::l2_sq(a.data(), b.data(), n),
                     ref_l2_sq(a.data(), b.data(), n), n);
  }
}

TEST(Kernels, DotFp16MatchesDequantizeThenDot) {
  util::Rng rng(13);
  for (const std::size_t n : kDims) {
    const auto raw = random_row(n, rng);
    const auto b = random_row(n, rng);
    std::vector<util::fp16_t> a(n);
    std::vector<float> widened(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = util::float_to_fp16(raw[i]);
      widened[i] = util::fp16_to_float(a[i]);
    }
    expect_bit_equal(kernels::dot_fp16(a.data(), b.data(), n),
                     ref_dot(widened.data(), b.data(), n), n);
  }
}

TEST(Kernels, Fp16TableCoversAllFinitePatterns) {
  // Spot the tricky regions explicitly: subnormals, signed zero, the
  // normal/subnormal boundary, max half — plus a dense sweep of every
  // finite pattern.  (Inf/NaN never occur in embeddings: arithmetic on
  // them is outside the determinism contract, the table itself is
  // constructed from util::fp16_to_float for all 65536 inputs.)
  std::vector<util::fp16_t> patterns;
  for (std::uint32_t h = 0; h < (1u << 16); h += 97) {
    if (((h >> 10) & 0x1fu) == 0x1fu) continue;  // skip inf/nan exponent
    patterns.push_back(static_cast<util::fp16_t>(h));
  }
  for (const util::fp16_t extra :
       {0x0000u, 0x8000u, 0x0001u, 0x03ffu, 0x0400u, 0x7bffu, 0xfbffu}) {
    patterns.push_back(static_cast<util::fp16_t>(extra));
  }
  const std::size_t n = patterns.size();
  std::vector<float> ones(n, 1.0f);
  std::vector<float> widened(n);
  for (std::size_t i = 0; i < n; ++i) {
    widened[i] = util::fp16_to_float(patterns[i]);
  }
  expect_bit_equal(kernels::dot_fp16(patterns.data(), ones.data(), n),
                   ref_dot(widened.data(), ones.data(), n), n);
}

TEST(Kernels, ZeroVectorsAndZeroLength) {
  const std::vector<float> zeros(16, 0.0f);
  const std::vector<float> other{1.0f, -2.0f, 3.0f, -4.0f, 5.0f, -6.0f,
                                 7.0f, -8.0f, 9.0f, -1.0f, 2.0f, -3.0f,
                                 4.0f, -5.0f, 6.0f, -7.0f};
  EXPECT_EQ(kernels::dot(zeros.data(), other.data(), 16), 0.0f);
  EXPECT_EQ(kernels::dot(other.data(), other.data(), 0), 0.0f);
  EXPECT_EQ(kernels::l2_sq(zeros.data(), zeros.data(), 16), 0.0f);
  const std::vector<util::fp16_t> zero16(16, 0);
  EXPECT_EQ(kernels::dot_fp16(zero16.data(), other.data(), 16), 0.0f);
}

// --- TopK -------------------------------------------------------------------

std::vector<SearchResult> ref_sort_and_trim(std::vector<SearchResult> all,
                                            std::size_t k) {
  std::sort(all.begin(), all.end(),
            [](const SearchResult& a, const SearchResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.row < b.row;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

TEST(TopK, MatchesFullSortWithDuplicateScores) {
  util::Rng rng(21);
  for (const std::size_t k : {std::size_t{1}, std::size_t{5},
                              std::size_t{10}, std::size_t{64}}) {
    std::vector<SearchResult> all;
    TopK top(k);
    for (std::size_t row = 0; row < 200; ++row) {
      // Coarse quantization forces score ties so the row tie-break runs.
      const float score =
          static_cast<float>(rng.bounded(16)) / 16.0f;
      all.push_back({row, score});
      top.push(row, score);
    }
    const auto want = ref_sort_and_trim(all, k);
    const auto got = top.take_sorted();
    ASSERT_EQ(got.size(), want.size()) << "k=" << k;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].row, want[i].row) << "k=" << k << " i=" << i;
      EXPECT_EQ(got[i].score, want[i].score);
    }
  }
}

TEST(TopK, BoundaryCapacities) {
  TopK zero(0);
  zero.push(1, 0.5f);
  EXPECT_TRUE(zero.take_sorted().empty());

  TopK bigger(10);
  bigger.push(3, 0.1f);
  bigger.push(1, 0.9f);
  const auto out = bigger.take_sorted();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].row, 1u);
  EXPECT_EQ(out[1].row, 3u);
}

TEST(TopK, ResetReusesSelector) {
  TopK top(2);
  top.push(0, 0.3f);
  top.push(1, 0.7f);
  top.push(2, 0.5f);
  EXPECT_EQ(top.take_sorted().size(), 2u);
  top.reset(1);
  top.push(5, 0.2f);
  top.push(6, 0.8f);
  const auto out = top.take_sorted();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].row, 6u);
}

// --- RowStorage -------------------------------------------------------------

TEST(RowStorage, ContiguousLayoutAndAccessors) {
  RowStorage rows(3);
  rows.add({1.0f, 2.0f, 3.0f});
  rows.add({4.0f, 5.0f, 6.0f});
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows.row(1)[0], 4.0f);
  EXPECT_EQ(rows.row(1) - rows.row(0), 3);  // truly contiguous
  EXPECT_EQ(rows.vector(0), (embed::Vector{1.0f, 2.0f, 3.0f}));
  rows.set_row(0, {7.0f, 8.0f, 9.0f});
  EXPECT_EQ(rows.raw()[0], 7.0f);
  EXPECT_THROW(rows.add(embed::Vector(2, 0.0f)), std::invalid_argument);
}

// --- batched search ----------------------------------------------------------

std::unique_ptr<VectorIndex> make_index(IndexKind kind, std::size_t dim) {
  switch (kind) {
    case IndexKind::kFlat: return std::make_unique<FlatIndex>(dim);
    case IndexKind::kIvf: return std::make_unique<IvfIndex>(dim);
    case IndexKind::kHnsw: return std::make_unique<HnswIndex>(dim);
  }
  return nullptr;
}

class BatchedSearch : public ::testing::TestWithParam<IndexKind> {};

TEST_P(BatchedSearch, IdenticalToSequentialAtAnyThreadCount) {
  constexpr std::size_t kDim = 24;
  constexpr std::size_t kK = 7;
  const auto data = random_unit_vectors(600, kDim, 31);
  const auto queries = random_unit_vectors(40, kDim, 32);
  auto idx = make_index(GetParam(), kDim);
  for (const auto& v : data) idx->add(v);
  idx->build();

  std::vector<std::vector<SearchResult>> want;
  want.reserve(queries.size());
  for (const auto& q : queries) want.push_back(idx->search(q, kK));

  for (const std::size_t threads : {1u, 2u, 8u}) {
    parallel::ThreadPool pool(threads);
    const auto got = idx->search_batch(queries, kK, pool);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].size(), want[i].size()) << "threads=" << threads;
      for (std::size_t j = 0; j < got[i].size(); ++j) {
        EXPECT_EQ(got[i][j].row, want[i][j].row)
            << "threads=" << threads << " q=" << i << " j=" << j;
        // Scores must match bit-for-bit, not approximately: the blocked
        // kernels are the only summation order.
        EXPECT_EQ(std::bit_cast<std::uint32_t>(got[i][j].score),
                  std::bit_cast<std::uint32_t>(want[i][j].score));
      }
    }
  }
}

TEST_P(BatchedSearch, EmptyBatchAndDefaultPool) {
  auto idx = make_index(GetParam(), 8);
  idx->build();
  EXPECT_TRUE(idx->search_batch({}, 3).empty());
}

INSTANTIATE_TEST_SUITE_P(Kinds, BatchedSearch,
                         ::testing::Values(IndexKind::kFlat, IndexKind::kIvf,
                                           IndexKind::kHnsw),
                         [](const auto& info) {
                           return std::string(index_kind_name(info.param));
                         });

// --- contiguous-storage save/load -------------------------------------------

TEST(ContiguousIo, IvfRoundTripBitExact) {
  constexpr std::size_t kDim = 13;  // odd on purpose
  const auto data = random_unit_vectors(300, kDim, 41);
  IvfConfig cfg;
  cfg.nlist = 12;
  cfg.nprobe = 5;
  IvfIndex idx(kDim, cfg);
  for (const auto& v : data) idx.add(v);
  idx.build();

  const std::string blob = idx.save();
  const IvfIndex loaded = IvfIndex::load(blob);
  EXPECT_EQ(loaded.size(), idx.size());
  EXPECT_EQ(loaded.nlist(), idx.nlist());
  EXPECT_EQ(loaded.save(), blob);  // stable round trip

  for (const auto& q : random_unit_vectors(8, kDim, 42)) {
    const auto a = idx.search(q, 6);
    const auto b = loaded.search(q, 6);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].row, b[i].row);
      EXPECT_EQ(std::bit_cast<std::uint32_t>(a[i].score),
                std::bit_cast<std::uint32_t>(b[i].score));
    }
  }
}

TEST(ContiguousIo, HnswRoundTripBitExact) {
  constexpr std::size_t kDim = 11;  // odd on purpose
  const auto data = random_unit_vectors(300, kDim, 43);
  HnswIndex idx(kDim);
  for (const auto& v : data) idx.add(v);

  const std::string blob = idx.save();
  const HnswIndex loaded = HnswIndex::load(blob);
  EXPECT_EQ(loaded.size(), idx.size());
  EXPECT_EQ(loaded.save(), blob);

  for (const auto& q : random_unit_vectors(8, kDim, 44)) {
    const auto a = idx.search(q, 6);
    const auto b = loaded.search(q, 6);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].row, b[i].row);
      EXPECT_EQ(std::bit_cast<std::uint32_t>(a[i].score),
                std::bit_cast<std::uint32_t>(b[i].score));
    }
  }
}

TEST(ContiguousIo, RejectsV1BlobsAndTruncation) {
  EXPECT_THROW(IvfIndex::load("ivfidx1\nanything"), std::runtime_error);
  EXPECT_THROW(HnswIndex::load("hnswidx1\nanything"), std::runtime_error);
  EXPECT_THROW(IvfIndex::load("ivfidx2\nshort"), std::runtime_error);
  EXPECT_THROW(HnswIndex::load("hnswidx2\nshort"), std::runtime_error);

  // Truncating a valid blob mid-payload must throw, not misread.
  IvfIndex idx(8);
  for (const auto& v : random_unit_vectors(40, 8, 45)) idx.add(v);
  idx.build();
  const std::string blob = idx.save();
  EXPECT_THROW(IvfIndex::load(std::string_view(blob).substr(
                   0, blob.size() / 2)),
               std::runtime_error);
}

// --- store-level batched query -----------------------------------------------

TEST(VectorStoreBatch, QueryBatchMatchesSequentialQueries) {
  const embed::HashedNGramEmbedder emb;
  VectorStore store(emb, IndexKind::kFlat);
  store.add("c1", "TP53 activates apoptosis following irradiation.");
  store.add("c2", "Samples were processed within thirty minutes.");
  store.add("c3", "Cisplatin radiosensitizes HeLa cells strongly.");
  store.add("c4", "ATM phosphorylates CHK2 after radiation exposure.");
  store.build();

  const std::vector<std::string> queries{
      "what activates apoptosis?", "radiosensitization of HeLa",
      "checkpoint signaling kinase", "sample processing time"};
  std::vector<std::vector<Hit>> want;
  for (const auto& q : queries) want.push_back(store.query(q, 2));

  for (const std::size_t threads : {1u, 4u}) {
    parallel::ThreadPool pool(threads);
    const auto got = store.query_batch(queries, 2, pool);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].size(), want[i].size());
      for (std::size_t j = 0; j < got[i].size(); ++j) {
        EXPECT_EQ(got[i][j].id, want[i][j].id);
        EXPECT_EQ(got[i][j].score, want[i][j].score);
      }
    }
  }
}

TEST(VectorStoreBatch, QueryBatchBeforeBuildThrows) {
  const embed::HashedNGramEmbedder emb;
  VectorStore store(emb);
  store.add("c1", "text");
  EXPECT_THROW(store.query_batch({"q"}, 1), std::logic_error);
}

}  // namespace
}  // namespace mcqa::index
