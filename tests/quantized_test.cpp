// Property tests for the quantized index tier (SQ8 + IVF-PQ): encode
// round-trip bounds, codebook determinism, the exact-rerank contract,
// fail-soft IO and the mmap-backed read path.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <unistd.h>

#include "corpus/vector_corpus.hpp"
#include "embed/hashed_embedder.hpp"
#include "index/mmap_file.hpp"
#include "index/quantized.hpp"
#include "index/vector_index.hpp"
#include "index/vector_store.hpp"
#include "parallel/thread_pool.hpp"
#include "util/fp16.hpp"
#include "util/rng.hpp"

namespace mcqa::index {
namespace {

std::vector<embed::Vector> random_unit_vectors(std::size_t n, std::size_t dim,
                                               std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<embed::Vector> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    embed::Vector v(dim);
    for (auto& x : v) x = static_cast<float>(rng.normal());
    embed::normalize(v);
    out.push_back(std::move(v));
  }
  return out;
}

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    static int counter = 0;
    path = std::filesystem::temp_directory_path() /
           ("mcqa-quantized-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

std::string write_file(const std::filesystem::path& p,
                       std::string_view bytes) {
  std::ofstream out(p, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return p.string();
}

void expect_same_results(const std::vector<SearchResult>& a,
                         const std::vector<SearchResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].row, b[i].row);
    EXPECT_EQ(a[i].score, b[i].score);  // bit equality, not tolerance
  }
}

// --- SQ8 round-trip ----------------------------------------------------------

TEST(Sq8RoundTrip, DecodeErrorWithinHalfScale) {
  constexpr std::size_t kDim = 48;
  const auto vecs = random_unit_vectors(200, kDim, 21);
  Sq8Index idx(kDim);
  idx.add_batch(vecs);
  idx.build();
  for (std::size_t i = 0; i < vecs.size(); ++i) {
    const embed::Vector decoded = idx.decode(i);
    for (std::size_t d = 0; d < kDim; ++d) {
      // The code grid spans the fp16-at-rest values, so the bound is
      // half a quantization step plus fp16 rounding of the input.
      const float stored = util::fp16_to_float(util::float_to_fp16(vecs[i][d]));
      const float bound = 0.5f * idx.scale_of(d) + 1e-3f;
      EXPECT_LE(std::abs(decoded[d] - stored), bound)
          << "row " << i << " dim " << d;
    }
  }
}

TEST(Sq8RoundTrip, ConstantDimensionEncodesExactly) {
  // A zero-range dimension has scale 0; codes collapse to 0 and decode
  // back to the (fp16) constant.
  Sq8Index idx(2);
  for (float x : {0.25f, 0.5f, 0.75f}) idx.add(embed::Vector{0.125f, x});
  idx.build();
  EXPECT_EQ(idx.scale_of(0), 0.0f);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(idx.decode(i)[0], 0.125f);
  }
}

// --- determinism -------------------------------------------------------------

TEST(QuantizedDeterminism, BlobsIdenticalAcrossThreadCounts) {
  constexpr std::size_t kDim = 32;
  const auto vecs = random_unit_vectors(500, kDim, 31);

  std::string sq8_blob;
  std::string pq_blob;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    parallel::ThreadPool pool(threads);
    Sq8Index sq8(kDim);
    sq8.add_batch(vecs);
    sq8.build(pool);
    IvfPqIndex pq(kDim);
    pq.add_batch(vecs);
    pq.build(pool);
    if (sq8_blob.empty()) {
      sq8_blob = sq8.save();
      pq_blob = pq.save();
    } else {
      EXPECT_EQ(sq8.save(), sq8_blob) << threads << " threads";
      EXPECT_EQ(pq.save(), pq_blob) << threads << " threads";
    }
  }
}

TEST(QuantizedDeterminism, PqCodebooksIdenticalAddVsAddBatch) {
  constexpr std::size_t kDim = 32;
  const auto vecs = random_unit_vectors(400, kDim, 41);

  IvfPqIndex seq(kDim);
  for (const auto& v : vecs) seq.add(v);
  seq.build();

  IvfPqIndex batch(kDim);
  batch.add_batch(vecs);
  parallel::ThreadPool pool(4);
  batch.build(pool);

  ASSERT_EQ(seq.subquantizers(), batch.subquantizers());
  ASSERT_EQ(seq.codebook_size(), batch.codebook_size());
  const auto& a = seq.codebooks();
  const auto& b = batch.codebooks();
  ASSERT_EQ(a.value_count(), b.value_count());
  EXPECT_EQ(0, std::memcmp(a.raw(), b.raw(),
                           a.value_count() * sizeof(float)));
  EXPECT_EQ(seq.save(), batch.save());
}

// --- the exact-rerank contract -----------------------------------------------

TEST(RerankContract, CoveringCandidatesBitIdenticalToFlat) {
  constexpr std::size_t kDim = 32;
  constexpr std::size_t kN = 600;
  const auto vecs = random_unit_vectors(kN, kDim, 51);
  const auto queries = random_unit_vectors(32, kDim, 52);

  FlatIndex flat(kDim);
  flat.add_batch(vecs);

  Sq8Config sq8_cfg;
  sq8_cfg.min_candidates = kN;  // candidate set spans the store
  Sq8Index sq8(kDim, sq8_cfg);
  sq8.add_batch(vecs);
  sq8.build();

  IvfPqConfig pq_cfg;
  pq_cfg.nprobe = kN;  // probe every cell
  pq_cfg.min_candidates = kN;
  IvfPqIndex pq(kDim, pq_cfg);
  pq.add_batch(vecs);
  pq.build();

  for (const auto& q : queries) {
    const auto want = flat.search(q, 10);
    expect_same_results(sq8.search(q, 10), want);
    expect_same_results(pq.search(q, 10), want);
  }
}

TEST(RerankContract, QuantizedRecallFloorOnClusteredCorpus) {
  // The regime the 1M ablation sweep measures, shrunk: clustered rows
  // where the candidate set covers the query's topic.
  corpus::VectorCorpusConfig cc;
  cc.rows = 1024;
  cc.dim = 64;
  cc.clusters = 32;
  const corpus::VectorCorpus vc(cc);
  parallel::ThreadPool pool(2);
  const auto rows = vc.block(0, cc.rows, pool);

  FlatIndex flat(cc.dim);
  flat.add_batch(rows);
  Sq8Config sq8_cfg;
  sq8_cfg.oversample = 16;
  Sq8Index sq8(cc.dim, sq8_cfg);
  sq8.add_batch(rows);
  sq8.build();
  IvfPqConfig pq_cfg;
  pq_cfg.nprobe = 16;
  pq_cfg.ksub = 64;
  pq_cfg.oversample = 16;
  IvfPqIndex pq(cc.dim, pq_cfg);
  pq.add_batch(rows);
  pq.build();

  double sq8_recall = 0.0;
  double pq_recall = 0.0;
  constexpr std::size_t kQueries = 16;
  for (std::size_t j = 0; j < kQueries; ++j) {
    const auto truth = flat.search(vc.query(j), 10);
    sq8_recall += recall_at_k(sq8.search(vc.query(j), 10), truth);
    pq_recall += recall_at_k(pq.search(vc.query(j), 10), truth);
  }
  EXPECT_GE(sq8_recall / kQueries, 0.95);
  EXPECT_GE(pq_recall / kQueries, 0.95);
}

TEST(RerankContract, ApproxCandidatesAreTheRerankPool) {
  // search(k) results must all come from the approximate candidate set
  // of the size the config implies.
  constexpr std::size_t kDim = 24;
  const auto vecs = random_unit_vectors(300, kDim, 61);
  Sq8Index sq8(kDim);
  sq8.add_batch(vecs);
  sq8.build();
  const auto q = random_unit_vectors(1, kDim, 62)[0];
  const auto cands = sq8.approx_candidates(q, 64);  // min_candidates
  for (const auto& hit : sq8.search(q, 10)) {
    const bool in_cands =
        std::any_of(cands.begin(), cands.end(),
                    [&](const SearchResult& c) { return c.row == hit.row; });
    EXPECT_TRUE(in_cands) << "row " << hit.row;
  }
}

// --- IO: round-trip, views, fail-soft ----------------------------------------

TEST(QuantizedIo, SaveLoadRoundTripSearchesIdentically) {
  constexpr std::size_t kDim = 40;
  const auto vecs = random_unit_vectors(250, kDim, 71);
  const auto queries = random_unit_vectors(8, kDim, 72);

  Sq8Index sq8(kDim);
  sq8.add_batch(vecs);
  sq8.build();
  const std::string sq8_blob = sq8.save();
  const Sq8Index sq8_loaded = Sq8Index::load(sq8_blob);
  const Sq8Index sq8_view = Sq8Index::load_view(sq8_blob);
  EXPECT_EQ(sq8_loaded.save(), sq8_blob);

  IvfPqIndex pq(kDim);
  pq.add_batch(vecs);
  pq.build();
  const std::string pq_blob = pq.save();
  const IvfPqIndex pq_loaded = IvfPqIndex::load(pq_blob);
  const IvfPqIndex pq_view = IvfPqIndex::load_view(pq_blob);
  EXPECT_EQ(pq_loaded.save(), pq_blob);

  for (const auto& q : queries) {
    expect_same_results(sq8_loaded.search(q, 7), sq8.search(q, 7));
    expect_same_results(sq8_view.search(q, 7), sq8.search(q, 7));
    expect_same_results(pq_loaded.search(q, 7), pq.search(q, 7));
    expect_same_results(pq_view.search(q, 7), pq.search(q, 7));
  }
}

TEST(QuantizedIo, SaveBeforeBuildThrows) {
  Sq8Index sq8(8);
  sq8.add(embed::Vector(8, 0.5f));
  EXPECT_THROW(sq8.save(), std::logic_error);
  IvfPqIndex pq(8);
  pq.add(embed::Vector(8, 0.5f));
  EXPECT_THROW(pq.save(), std::logic_error);
}

TEST(QuantizedIo, DispatchLoadsByMagic) {
  constexpr std::size_t kDim = 16;
  const auto vecs = random_unit_vectors(60, kDim, 81);
  for (const IndexKind kind : {IndexKind::kSq8, IndexKind::kIvfPq}) {
    std::unique_ptr<VectorIndex> idx =
        kind == IndexKind::kSq8
            ? static_cast<std::unique_ptr<VectorIndex>>(
                  std::make_unique<Sq8Index>(kDim))
            : std::make_unique<IvfPqIndex>(kDim);
    idx->add_batch(vecs);
    idx->build();
    const auto loaded = load_index(idx->save());
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->kind(), kind);
    EXPECT_EQ(loaded->size(), vecs.size());
    EXPECT_EQ(loaded->save(), idx->save());
  }
}

TEST(QuantizedIo, TruncatedBlobFailsSoft) {
  constexpr std::size_t kDim = 16;
  const auto vecs = random_unit_vectors(60, kDim, 91);
  Sq8Index sq8(kDim);
  sq8.add_batch(vecs);
  sq8.build();
  IvfPqIndex pq(kDim);
  pq.add_batch(vecs);
  pq.build();
  for (const std::string blob : {sq8.save(), pq.save()}) {
    // Cut inside the header, inside each payload region, and mid-pad.
    for (const std::size_t keep :
         {std::size_t{3}, std::size_t{9}, std::size_t{17}, blob.size() / 4,
          blob.size() / 2, blob.size() - 3, blob.size() - 1}) {
      EXPECT_EQ(try_load_index(blob.substr(0, keep)), nullptr)
          << "prefix of " << keep << " bytes";
    }
    EXPECT_NE(try_load_index(blob), nullptr);
  }
}

TEST(QuantizedIo, UnknownMagicFailsSoft) {
  EXPECT_EQ(try_load_index("zzzidx9\n\x10\x00\x00\x00"), nullptr);
  EXPECT_EQ(try_load_index(""), nullptr);
  EXPECT_THROW(load_index("zzzidx9\nmore"), std::runtime_error);
}

// --- mmap-backed reads -------------------------------------------------------

TEST(MmapIndex, OpenMatchesResidentBitExact) {
  constexpr std::size_t kDim = 32;
  const auto vecs = random_unit_vectors(300, kDim, 101);
  const auto queries = random_unit_vectors(8, kDim, 102);
  const TempDir dir;

  for (const IndexKind kind :
       {IndexKind::kFlat, IndexKind::kSq8, IndexKind::kIvfPq}) {
    std::unique_ptr<VectorIndex> idx;
    switch (kind) {
      case IndexKind::kFlat: idx = std::make_unique<FlatIndex>(kDim); break;
      case IndexKind::kSq8: idx = std::make_unique<Sq8Index>(kDim); break;
      default: idx = std::make_unique<IvfPqIndex>(kDim); break;
    }
    idx->add_batch(vecs);
    idx->build();
    const auto path = write_file(
        dir.path / (std::string(index_kind_name(kind)) + ".idx"),
        idx->save());
    const MappedIndex mapped = open_index_mmap(path);
    ASSERT_NE(mapped.index, nullptr);
    EXPECT_TRUE(mapped.index->mmap_backed())
        << index_kind_name(kind) << " payload was copied, not viewed";
    EXPECT_EQ(mapped.index->size(), idx->size());
    for (const auto& q : queries) {
      expect_same_results(mapped.index->search(q, 9), idx->search(q, 9));
    }
  }
}

TEST(MmapIndex, MappedFileOnMissingPathThrows) {
  EXPECT_THROW(open_index_mmap("/nonexistent/mcqa-no-such-file.idx"),
               std::runtime_error);
}

TEST(MmapConcurrency, SearchBatchOverMappedStore) {
  // Concurrent reads over the shared mapping: pool-fanned search_batch
  // must be race-free (tsan lane) and bit-identical to sequential.
  constexpr std::size_t kDim = 48;
  const auto vecs = random_unit_vectors(400, kDim, 111);
  const auto queries = random_unit_vectors(24, kDim, 112);
  const TempDir dir;

  Sq8Index built(kDim);
  built.add_batch(vecs);
  built.build();
  const auto path = write_file(dir.path / "sq8.idx", built.save());
  const MappedIndex mapped = open_index_mmap(path);
  ASSERT_TRUE(mapped.index->mmap_backed());

  std::vector<std::vector<SearchResult>> want;
  for (const auto& q : queries) want.push_back(mapped.index->search(q, 10));
  for (const std::size_t threads : {2u, 8u}) {
    parallel::ThreadPool pool(threads);
    const auto got = mapped.index->search_batch(queries, 10, pool);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      expect_same_results(got[i], want[i]);
    }
  }
}

TEST(MmapStore, OpenMmapMatchesLoadedStore) {
  const embed::HashedNGramEmbedder embedder;
  const TempDir dir;
  for (const IndexKind kind : {IndexKind::kFlat, IndexKind::kSq8}) {
    VectorStore store(embedder, kind);
    for (int i = 0; i < 120; ++i) {
      store.add("id-" + std::to_string(i),
                "payload text number " + std::to_string(i * 7));
    }
    store.build();
    const auto path = write_file(dir.path / "store.bin", store.save());

    const VectorStore resident = VectorStore::load(embedder, store.save());
    const VectorStore mapped = VectorStore::open_mmap(embedder, path);
    EXPECT_FALSE(resident.mmap_backed());
    EXPECT_TRUE(mapped.mmap_backed());
    ASSERT_EQ(mapped.size(), resident.size());

    const auto a = resident.query("payload text number 49", 5);
    const auto b = mapped.query("payload text number 49", 5);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].score, b[i].score);
    }
  }
}

}  // namespace
}  // namespace mcqa::index
