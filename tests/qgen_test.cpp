// Unit tests for MCQ record schema and benchmark construction.

#include <gtest/gtest.h>

#include <set>

#include "chunk/chunker.hpp"
#include "corpus/fact_matcher.hpp"
#include "corpus/realization.hpp"
#include "llm/teacher_model.hpp"
#include "qgen/benchmark_builder.hpp"
#include "qgen/mcq_record.hpp"

namespace mcqa::qgen {
namespace {

const corpus::KnowledgeBase& test_kb() {
  static const corpus::KnowledgeBase kb = corpus::KnowledgeBase::generate(
      corpus::KbConfig{.facts_per_topic = 14, .seed = 31, .math_fraction = 0.4});
  return kb;
}

std::vector<chunk::Chunk> test_chunks() {
  std::vector<chunk::Chunk> chunks;
  std::size_t index = 0;
  for (const auto& f : test_kb().facts()) {
    chunk::Chunk c;
    c.chunk_id = chunk::make_chunk_id("doc_qgen", index);
    c.doc_id = "doc_qgen";
    c.path = "corpus/doc_qgen.spdf";
    c.index = index++;
    c.text = "Background sentences set the stage for the finding. " +
             corpus::realize_statement(test_kb(), f, 1) +
             " Further replication confirmed the effect.";
    c.word_count = 28;
    chunks.push_back(std::move(c));
    if (chunks.size() >= 120) break;
  }
  // Some filler-only chunks that must produce no questions.
  for (int i = 0; i < 30; ++i) {
    chunk::Chunk c;
    c.chunk_id = chunk::make_chunk_id("doc_filler", static_cast<std::size_t>(i));
    c.doc_id = "doc_filler";
    c.path = "corpus/doc_filler.spdf";
    c.text = "Experiments were performed in triplicate and repeated on "
             "independent occasions with appropriate controls.";
    c.word_count = 15;
    chunks.push_back(std::move(c));
  }
  return chunks;
}

// --- record schema --------------------------------------------------------------

TEST(McqRecord, RenderQuestionNumbersOptions) {
  const std::string q = McqRecord::render_question(
      "Which one?", {"first", "second", "third"});
  EXPECT_NE(q.find("Which one?"), std::string::npos);
  EXPECT_NE(q.find("1. first"), std::string::npos);
  EXPECT_NE(q.find("3. third"), std::string::npos);
}

TEST(McqRecord, JsonRoundTripPreservesAllFields) {
  McqRecord r;
  r.record_id = "q_abc_1";
  r.stem = "What is the half-life of iodine-131?";
  r.options = {"8 days", "80 days", "8 years"};
  r.correct_index = 0;
  r.question = McqRecord::render_question(r.stem, r.options);
  r.answer = r.options[0];
  r.text = "source chunk text";
  r.chunk_id = "abcdef123456_7";
  r.path = "corpus/paper_000001.spdf";
  r.relevance_score = 8.5;
  r.relevance_reasoning = "domain relevant";
  r.quality_score = 7.75;
  r.quality_critique = "clear";
  r.quality_raw_output = "score=7.75";
  r.fact = 42;
  r.math = true;
  r.fact_importance = 0.66;
  r.key_principle = "decay halves activity";
  r.ambiguity = 0.1;
  r.exam_item = false;

  const McqRecord back = McqRecord::from_json(r.to_json());
  EXPECT_EQ(back.record_id, r.record_id);
  EXPECT_EQ(back.stem, r.stem);
  EXPECT_EQ(back.options, r.options);
  EXPECT_EQ(back.correct_index, r.correct_index);
  EXPECT_EQ(back.question, r.question);
  EXPECT_EQ(back.answer, r.answer);
  EXPECT_EQ(back.chunk_id, r.chunk_id);
  EXPECT_EQ(back.path, r.path);
  EXPECT_DOUBLE_EQ(back.relevance_score, r.relevance_score);
  EXPECT_DOUBLE_EQ(back.quality_score, r.quality_score);
  EXPECT_EQ(back.fact, r.fact);
  EXPECT_TRUE(back.math);
  EXPECT_DOUBLE_EQ(back.fact_importance, r.fact_importance);
  EXPECT_EQ(back.key_principle, r.key_principle);
  EXPECT_DOUBLE_EQ(back.ambiguity, r.ambiguity);
}

TEST(McqRecord, JsonHasPaperSchemaFields) {
  McqRecord r;
  r.type = "multiple-choice";
  r.cleaning_version = "1.0";
  const json::Value v = r.to_json();
  // Fig. 2 field names.
  EXPECT_TRUE(v.as_object().contains("question"));
  EXPECT_TRUE(v.as_object().contains("answer"));
  EXPECT_TRUE(v.as_object().contains("text"));
  EXPECT_TRUE(v.as_object().contains("type"));
  EXPECT_TRUE(v.as_object().contains("chunk_id"));
  EXPECT_TRUE(v.as_object().contains("cleaning_version"));
  EXPECT_TRUE(v.as_object().contains("path"));
  EXPECT_TRUE(v.at("relevance_check").as_object().contains("score"));
  EXPECT_TRUE(v.at("quality_check").as_object().contains("critique"));
}

TEST(McqRecord, ToTaskCopiesSimulationLayer) {
  McqRecord r;
  r.record_id = "rid";
  r.stem = "stem";
  r.options = {"a", "b"};
  r.correct_index = 1;
  r.fact = 9;
  r.math = true;
  r.fact_importance = 0.4;
  r.ambiguity = 0.2;
  r.exam_item = true;
  const llm::McqTask t = r.to_task();
  EXPECT_EQ(t.id, "rid");
  EXPECT_EQ(t.correct_index, 1);
  EXPECT_EQ(t.fact, 9u);
  EXPECT_TRUE(t.math);
  EXPECT_TRUE(t.has_fact);
  EXPECT_TRUE(t.exam_item);
  EXPECT_DOUBLE_EQ(t.ambiguity, 0.2);
  EXPECT_TRUE(t.context.empty());
}

// --- benchmark builder -------------------------------------------------------------

TEST(BenchmarkBuilder, FunnelAccounting) {
  const corpus::FactMatcher matcher(test_kb());
  const llm::TeacherModel teacher(test_kb(), matcher);
  const BenchmarkBuilder builder(teacher);
  FunnelStats stats;
  const auto records = builder.build(test_chunks(), &stats);
  EXPECT_EQ(stats.chunks, test_chunks().size());
  EXPECT_EQ(stats.accepted, records.size());
  EXPECT_EQ(stats.chunks, stats.candidates + stats.rejected_no_fact);
  EXPECT_EQ(stats.candidates,
            stats.accepted + stats.rejected_quality + stats.rejected_relevance);
  // All filler chunks must be no-fact rejections.
  EXPECT_GE(stats.rejected_no_fact, 30u);
}

TEST(BenchmarkBuilder, AcceptedRecordsAreWellFormed) {
  const corpus::FactMatcher matcher(test_kb());
  const llm::TeacherModel teacher(test_kb(), matcher);
  const BenchmarkBuilder builder(teacher);
  const auto records = builder.build(test_chunks());
  ASSERT_FALSE(records.empty());
  std::set<std::string> ids;
  for (const auto& r : records) {
    EXPECT_TRUE(ids.insert(r.record_id).second) << "duplicate record id";
    EXPECT_GE(r.quality_score, 7.0);
    EXPECT_GE(r.relevance_score, 5.0);
    ASSERT_GE(r.correct_index, 0);
    ASSERT_LT(r.correct_index, static_cast<int>(r.options.size()));
    EXPECT_EQ(r.answer, r.options[static_cast<std::size_t>(r.correct_index)]);
    EXPECT_FALSE(r.text.empty());           // provenance: source chunk
    EXPECT_FALSE(r.chunk_id.empty());
    EXPECT_NE(r.record_id.find(r.chunk_id), std::string::npos);
    EXPECT_NE(r.question.find(r.stem), std::string::npos);
    EXPECT_GT(r.ambiguity, 0.0);  // residual ambiguity recorded
    // The probed fact really is in the source chunk.
    EXPECT_TRUE(matcher.contains(r.text, r.fact));
  }
}

TEST(BenchmarkBuilder, HigherThresholdAcceptsFewer) {
  const corpus::FactMatcher matcher(test_kb());
  const llm::TeacherModel teacher(test_kb(), matcher);
  BuilderConfig lenient;
  lenient.quality_threshold = 5.0;
  BuilderConfig strict;
  strict.quality_threshold = 8.5;
  const auto many = BenchmarkBuilder(teacher, lenient).build(test_chunks());
  const auto few = BenchmarkBuilder(teacher, strict).build(test_chunks());
  EXPECT_GT(many.size(), few.size());
}

TEST(BenchmarkBuilder, DeterministicAcrossRuns) {
  const corpus::FactMatcher matcher(test_kb());
  const llm::TeacherModel teacher(test_kb(), matcher);
  const BenchmarkBuilder builder(teacher);
  const auto a = builder.build(test_chunks());
  const auto b = builder.build(test_chunks());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].record_id, b[i].record_id);
    EXPECT_EQ(a[i].question, b[i].question);
    EXPECT_EQ(a[i].correct_index, b[i].correct_index);
  }
}

TEST(BenchmarkBuilder, EmptyInput) {
  const corpus::FactMatcher matcher(test_kb());
  const llm::TeacherModel teacher(test_kb(), matcher);
  const BenchmarkBuilder builder(teacher);
  FunnelStats stats;
  EXPECT_TRUE(builder.build({}, &stats).empty());
  EXPECT_EQ(stats.chunks, 0u);
  EXPECT_DOUBLE_EQ(stats.acceptance_rate(), 0.0);
}

}  // namespace
}  // namespace mcqa::qgen
