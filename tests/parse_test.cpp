// Unit tests for the adaptive parsing substrate (AdaParse-equivalent).

#include <gtest/gtest.h>

#include "corpus/paper_generator.hpp"
#include "corpus/spdf.hpp"
#include "parse/adaptive.hpp"
#include "parse/parsers.hpp"
#include "parse/quality.hpp"

namespace mcqa::parse {
namespace {

corpus::PaperSpec sample_spec(std::uint64_t seed = 42) {
  static const corpus::KnowledgeBase kb = corpus::KnowledgeBase::generate(
      corpus::KbConfig{.facts_per_topic = 10, .seed = 3, .math_fraction = 0.4});
  const corpus::PaperGenerator gen(kb, corpus::PaperGenConfig{});
  return gen.generate(0, corpus::DocKind::kFullPaper, util::Rng(seed));
}

// --- SPDF scanning ------------------------------------------------------------

TEST(SpdfScan, ExtractsHeaderMetadata) {
  const corpus::PaperSpec spec = sample_spec();
  const std::string bytes =
      write_spdf(spec, corpus::SpdfNoise::clean(), util::Rng(1));
  const SpdfScan scan = scan_spdf(bytes);
  EXPECT_EQ(scan.doc_id, spec.doc_id);
  EXPECT_EQ(scan.title, spec.title);
  EXPECT_EQ(scan.kind, "paper");
  EXPECT_GT(scan.pages, 0u);
  EXPECT_TRUE(scan.saw_eof);
  EXPECT_FALSE(scan.headings.empty());
}

TEST(SpdfScan, RejectsNonSpdf) {
  EXPECT_THROW(scan_spdf("plain text"), ParseFailure);
  EXPECT_THROW(scan_spdf(""), ParseFailure);
}

TEST(SpdfScan, RejectsPagelessStream) {
  EXPECT_THROW(scan_spdf("%SPDF-1.2\n%%Title: x\n%%EOF\n"), ParseFailure);
}

// --- strategies -----------------------------------------------------------------

TEST(FastParser, LeavesArtifactsInHardDocs) {
  const corpus::PaperSpec spec = sample_spec();
  const std::string bytes =
      write_spdf(spec, corpus::SpdfNoise::hard(), util::Rng(2));
  const FastSpdfParser fast;
  const ParsedDocument doc = fast.parse(bytes);
  // Hard docs always carry headers; fast keeps them in the body.
  EXPECT_NE(doc.body_text().find("~HDR~"), std::string::npos);
}

TEST(AccurateParser, RemovesHeadersAndFooters) {
  const corpus::PaperSpec spec = sample_spec();
  const std::string bytes =
      write_spdf(spec, corpus::SpdfNoise::hard(), util::Rng(2));
  const AccurateSpdfParser accurate;
  const ParsedDocument doc = accurate.parse(bytes);
  EXPECT_EQ(doc.body_text().find("~HDR~"), std::string::npos);
  EXPECT_EQ(doc.body_text().find("~FTR~"), std::string::npos);
}

TEST(AccurateParser, DehyphenatesWrappedWords) {
  // Build a synthetic page with a known hyphenation split.
  const std::string bytes =
      "%SPDF-1.2\n%%Title: t\n%%DocId: d\n%%Kind: paper\n"
      "%%BeginPage 1\n"
      "<<section Results>>\n"
      "The radio-\n"
      "therapy schedule was hypofraction-\n"
      "ated in all arms.\n"
      "%%EndPage\n%%EOF\n";
  const AccurateSpdfParser accurate;
  const ParsedDocument doc = accurate.parse(bytes);
  const std::string body = doc.body_text();
  EXPECT_NE(body.find("radiotherapy"), std::string::npos) << body;
  EXPECT_NE(body.find("hypofractionated"), std::string::npos) << body;
}

TEST(AccurateParser, RepairsLigaturePlaceholders) {
  const std::string bytes =
      "%SPDF-1.2\n%%Title: t\n%%DocId: d\n%%Kind: paper\n"
      "%%BeginPage 1\n"
      "signi\x01" "cant e\x01" "ects were observed\n"
      "%%EndPage\n%%EOF\n";
  const AccurateSpdfParser accurate;
  const ParsedDocument doc = accurate.parse(bytes);
  EXPECT_NE(doc.body_text().find("significant"), std::string::npos);
  EXPECT_EQ(doc.body_text().find('\x01'), std::string::npos);
}

TEST(AccurateParser, ReconstructsSectionStructure) {
  const corpus::PaperSpec spec = sample_spec();
  const std::string bytes =
      write_spdf(spec, corpus::SpdfNoise::clean(), util::Rng(3));
  const AccurateSpdfParser accurate;
  const ParsedDocument doc = accurate.parse(bytes);
  ASSERT_EQ(doc.sections.size(), spec.sections.size());
  for (std::size_t i = 0; i < doc.sections.size(); ++i) {
    EXPECT_EQ(doc.sections[i].heading, spec.sections[i].heading);
  }
}

TEST(AccurateParser, RecoversCleanTextVerbatim) {
  const corpus::PaperSpec spec = sample_spec();
  corpus::SpdfNoise no_noise = corpus::SpdfNoise::clean();
  no_noise.hyphenation = 0.0;
  const std::string bytes = write_spdf(spec, no_noise, util::Rng(4));
  const AccurateSpdfParser accurate;
  const ParsedDocument doc = accurate.parse(bytes);
  // Every original sentence should appear verbatim in the parsed body.
  const std::string body = doc.body_text();
  for (const auto& section : spec.sections) {
    for (const auto& s : section.sentences) {
      EXPECT_NE(body.find(s.text), std::string::npos)
          << "missing: " << s.text;
    }
  }
}

TEST(MarkdownParser, ParsesTitleAndSections) {
  const corpus::PaperSpec spec = sample_spec();
  const std::string md = write_markdown(spec);
  const MarkdownParser parser;
  ASSERT_TRUE(parser.accepts(md));
  const ParsedDocument doc = parser.parse(md);
  EXPECT_EQ(doc.title, spec.title);
  ASSERT_EQ(doc.sections.size(), spec.sections.size());
}

TEST(MarkdownParser, RejectsNonMarkdown) {
  const MarkdownParser parser;
  EXPECT_FALSE(parser.accepts("%SPDF-1.2\n..."));
  EXPECT_THROW(parser.parse("no heading"), ParseFailure);
}

TEST(PlainTextParser, TitleAndParagraphs) {
  const PlainTextParser parser;
  const ParsedDocument doc = parser.parse(
      "My Title\n\nFirst paragraph sentence. More text.\n\n"
      "Second paragraph here.");
  EXPECT_EQ(doc.title, "My Title");
  EXPECT_EQ(doc.sections.size(), 2u);
}

TEST(PlainTextParser, EmptyFails) {
  const PlainTextParser parser;
  EXPECT_THROW(parser.parse(""), ParseFailure);
}

// --- quality ----------------------------------------------------------------------

TEST(Quality, DifficultyFeaturesSeparateNoiseLevels) {
  const corpus::PaperSpec spec = sample_spec();
  const std::string clean =
      write_spdf(spec, corpus::SpdfNoise::clean(), util::Rng(5));
  const std::string hard =
      write_spdf(spec, corpus::SpdfNoise::hard(), util::Rng(5));
  const auto f_clean = extract_difficulty_features(clean);
  const auto f_hard = extract_difficulty_features(hard);
  EXPECT_GT(predict_fast_parser_success(f_clean),
            predict_fast_parser_success(f_hard));
}

TEST(Quality, TruncatedStreamPredictsFailure) {
  DifficultyFeatures f;
  f.truncated = true;
  EXPECT_LT(predict_fast_parser_success(f), 0.1);
}

TEST(Quality, ScoreOrdersFastVsAccurateOnHardDoc) {
  const corpus::PaperSpec spec = sample_spec();
  const std::string bytes =
      write_spdf(spec, corpus::SpdfNoise::hard(), util::Rng(6));
  const FastSpdfParser fast;
  const AccurateSpdfParser accurate;
  const double q_fast = quality_score(fast.parse(bytes));
  const double q_acc = quality_score(accurate.parse(bytes));
  EXPECT_GT(q_acc, q_fast);
  EXPECT_GE(q_fast, 0.0);
  EXPECT_LE(q_acc, 1.0);
}

TEST(Quality, EmptyDocumentScoresZero) {
  ParsedDocument empty;
  EXPECT_DOUBLE_EQ(quality_score(empty), 0.0);
}

// --- adaptive dispatch ----------------------------------------------------------------

TEST(Adaptive, RoutesCleanToFast) {
  const corpus::PaperSpec spec = sample_spec();
  corpus::SpdfNoise clean = corpus::SpdfNoise::clean();
  clean.hyphenation = 0.0;
  const std::string bytes = write_spdf(spec, clean, util::Rng(7));
  const AdaptiveParser parser;
  const ParseOutcome outcome = parser.parse(bytes);
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.route, "fast");
  EXPECT_DOUBLE_EQ(outcome.compute_cost, 1.0);
}

TEST(Adaptive, RoutesHardToAccurate) {
  const corpus::PaperSpec spec = sample_spec();
  const std::string bytes =
      write_spdf(spec, corpus::SpdfNoise::hard(), util::Rng(8));
  const AdaptiveParser parser;
  const ParseOutcome outcome = parser.parse(bytes);
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.route, "accurate");
  EXPECT_LT(outcome.predicted_fast_success, 0.5);
}

TEST(Adaptive, MarkdownAndTextRouted) {
  const corpus::PaperSpec spec = sample_spec();
  const AdaptiveParser parser;
  const ParseOutcome md = parser.parse(write_markdown(spec));
  EXPECT_TRUE(md.ok);
  EXPECT_EQ(md.route, "markdown");
  const ParseOutcome txt = parser.parse(write_text(spec));
  EXPECT_TRUE(txt.ok);
  EXPECT_EQ(txt.route, "text");
}

TEST(Adaptive, CorruptStreamFailsGracefully) {
  const AdaptiveParser parser;
  const ParseOutcome outcome = parser.parse("%SPDF-1.2\n%%Title: x\n");
  EXPECT_FALSE(outcome.ok);
  EXPECT_FALSE(outcome.error.empty());
}

TEST(Adaptive, EmptyInputFails) {
  const AdaptiveParser parser;
  const ParseOutcome outcome = parser.parse("");
  EXPECT_FALSE(outcome.ok);
}

TEST(Adaptive, EscalationPaysBothCosts) {
  // Force escalation: route threshold 0 sends everything to fast first,
  // accept threshold 1.0 rejects any fast parse of a noisy doc.
  const corpus::PaperSpec spec = sample_spec();
  const std::string bytes =
      write_spdf(spec, corpus::SpdfNoise::hard(), util::Rng(9));
  AdaptiveConfig cfg;
  cfg.route_threshold = 0.0;
  cfg.accept_threshold = 1.0;
  const AdaptiveParser parser(cfg);
  const ParseOutcome outcome = parser.parse(bytes);
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.route, "fast->accurate");
  EXPECT_DOUBLE_EQ(outcome.compute_cost, 9.0);  // 1 + 8
}

TEST(RoutingStats, MergeAndSaving) {
  RoutingStats a;
  a.total = 10;
  a.compute_cost = 20.0;
  a.always_accurate_cost = 80.0;
  RoutingStats b;
  b.total = 5;
  b.compute_cost = 40.0;
  b.always_accurate_cost = 40.0;
  a.merge(b);
  EXPECT_EQ(a.total, 15u);
  EXPECT_DOUBLE_EQ(a.compute_saving(), 0.5);
}

// --- document JSON ----------------------------------------------------------------------

TEST(ParsedDocument, JsonRoundTrip) {
  ParsedDocument doc;
  doc.doc_id = "paper_000001";
  doc.title = "A title";
  doc.kind = "paper";
  doc.sections.push_back({"Abstract", "Some text."});
  doc.sections.push_back({"Results", "More text."});
  doc.parser_used = "spdf-accurate";
  doc.quality = 0.93;
  doc.pages = 4;

  const ParsedDocument back = ParsedDocument::from_json(doc.to_json());
  EXPECT_EQ(back.doc_id, doc.doc_id);
  EXPECT_EQ(back.title, doc.title);
  ASSERT_EQ(back.sections.size(), 2u);
  EXPECT_EQ(back.sections[1].text, "More text.");
  EXPECT_EQ(back.parser_used, doc.parser_used);
  EXPECT_DOUBLE_EQ(back.quality, doc.quality);
  EXPECT_EQ(back.pages, doc.pages);
}

}  // namespace
}  // namespace mcqa::parse
