// Benchmark-builder example: run the generation pipeline and export the
// paper's JSON artifacts to disk —
//   out/benchmark.jsonl        one Fig. 2 MCQA record per line
//   out/traces_<mode>.jsonl    one Fig. 3 trace record per line
//   out/parsed_docs.jsonl      AdaParse-style parsed-document records
//
//   ./build/examples/build_benchmark [scale] [outdir]

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "core/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace mcqa;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.005;
  const std::filesystem::path outdir = argc > 2 ? argv[2] : "out";

  std::printf("Building pipeline at scale %.3f...\n", scale);
  const core::PipelineContext ctx(core::PipelineConfig::paper_scale(scale));

  std::filesystem::create_directories(outdir);

  {
    std::ofstream f(outdir / "benchmark.jsonl");
    for (const auto& record : ctx.benchmark()) {
      f << record.to_json().dump() << "\n";
    }
    std::printf("wrote %zu MCQA records   -> %s\n", ctx.benchmark().size(),
                (outdir / "benchmark.jsonl").c_str());
  }

  for (int m = 0; m < trace::kTraceModeCount; ++m) {
    const auto mode = static_cast<trace::TraceMode>(m);
    const std::string filename =
        "traces_" + std::string(trace::trace_mode_name(mode)) + ".jsonl";
    std::ofstream f(outdir / filename);
    for (const auto& t : ctx.traces(mode)) {
      f << t.to_json().dump() << "\n";
    }
    std::printf("wrote %zu %s traces -> %s\n", ctx.traces(mode).size(),
                std::string(trace::trace_mode_name(mode)).c_str(),
                (outdir / filename).c_str());
  }

  {
    std::ofstream f(outdir / "parsed_docs.jsonl");
    for (const auto& doc : ctx.parsed()) {
      f << doc.to_json().dump() << "\n";
    }
    std::printf("wrote %zu parsed docs   -> %s\n", ctx.parsed().size(),
                (outdir / "parsed_docs.jsonl").c_str());
  }

  // Round-trip check: re-read the first record of each artifact.
  {
    std::ifstream f(outdir / "benchmark.jsonl");
    std::string line;
    std::getline(f, line);
    const auto record = qgen::McqRecord::from_json(json::Value::parse(line));
    std::printf("\nround-trip check: first record id = %s, %zu options, "
                "quality %.1f/10\n",
                record.record_id.c_str(), record.options.size(),
                record.quality_score);
  }
  std::printf("\nFunnel: %zu chunks -> %zu candidates -> %zu accepted "
              "(%.1f%%)\n",
              ctx.stats().chunks, ctx.stats().funnel.candidates,
              ctx.stats().funnel.accepted,
              100.0 * ctx.stats().funnel.acceptance_rate());
  return 0;
}
