// Continuous-expansion example: the framework's "benchmarks that keep
// pace with the literature" workflow.  Simulates three publication
// waves arriving over time; each wave extends the benchmark and the
// trace stores incrementally, and a fixed student is re-evaluated on the
// growing question set.
//
//   ./build/examples/continuous_expansion

#include <cstdio>
#include <unordered_set>

#include "core/expansion.hpp"
#include "corpus/fact_matcher.hpp"
#include "eval/harness.hpp"
#include "eval/judge.hpp"
#include "eval/report.hpp"
#include "index/vector_store.hpp"
#include "llm/student_model.hpp"
#include "rag/rag_pipeline.hpp"

int main() {
  using namespace mcqa;

  const corpus::KnowledgeBase kb = corpus::KnowledgeBase::generate({});
  const corpus::FactMatcher matcher(kb);
  const embed::HashedNGramEmbedder embedder = embed::make_biomed_encoder();
  const llm::TeacherModel teacher(kb, matcher);

  std::vector<qgen::McqRecord> benchmark;
  std::array<std::vector<trace::TraceRecord>, trace::kTraceModeCount> traces;
  std::unordered_set<std::string> seen_chunks;

  const auto& card = llm::student_card("SmolLM3-3B");
  const llm::StudentModel student(card);

  std::printf("Continuous benchmark expansion: three publication waves\n\n");
  eval::TableWriter table({"Wave", "New docs", "New questions",
                           "Benchmark size", "RT-Focused accuracy"});

  for (std::uint64_t wave = 1; wave <= 3; ++wave) {
    // Each wave: a fresh slice of "newly published" documents.
    corpus::CorpusConfig cfg;
    cfg.scale = 0.004;
    cfg.seed = 1000 + wave;  // different publications each wave
    const auto docs = build_corpus(kb, cfg).documents;

    const core::ExpansionResult result = core::expand_benchmark(
        docs, seen_chunks, embedder, teacher);

    // Merge: extend the benchmark, remember ingested chunk content.
    for (const auto& r : result.new_records) {
      benchmark.push_back(r);
    }
    for (int m = 0; m < trace::kTraceModeCount; ++m) {
      for (const auto& t : result.new_traces[static_cast<std::size_t>(m)]) {
        traces[static_cast<std::size_t>(m)].push_back(t);
      }
    }
    // Content ledger: a production deployment persists this set; here we
    // re-derive it from record provenance plus the fresh chunk count.
    for (const auto& r : result.new_records) seen_chunks.insert(r.chunk_id);

    // Rebuild retrieval stores over the merged artifacts (stores are
    // cheap relative to generation; FAISS-style rebuilds are how the
    // paper's pipeline refreshes too).
    index::VectorStore chunk_store(embedder);
    for (const auto& r : benchmark) chunk_store.add(r.chunk_id, r.text);
    chunk_store.build();
    std::array<std::unique_ptr<index::VectorStore>, trace::kTraceModeCount>
        trace_stores;
    rag::RetrievalStores stores;
    stores.chunks = &chunk_store;
    for (int m = 0; m < trace::kTraceModeCount; ++m) {
      trace_stores[static_cast<std::size_t>(m)] =
          std::make_unique<index::VectorStore>(embedder);
      for (const auto& t : traces[static_cast<std::size_t>(m)]) {
        trace_stores[static_cast<std::size_t>(m)]->add(t.trace_id,
                                                       t.retrieval_text());
      }
      trace_stores[static_cast<std::size_t>(m)]->build();
      stores.traces[static_cast<std::size_t>(m)] =
          trace_stores[static_cast<std::size_t>(m)].get();
    }
    const rag::RagPipeline rag(kb, matcher, stores, rag::RagConfig{});
    const eval::EvalHarness harness(rag);
    const eval::Accuracy acc = harness.evaluate(
        student, card.spec, benchmark, rag::Condition::kTraceFocused);

    table.add_row({std::to_string(wave), std::to_string(docs.size()),
                   std::to_string(result.new_records.size()),
                   std::to_string(benchmark.size()),
                   eval::fmt_acc(acc.value()) + " ±" +
                       eval::fmt_acc(acc.ci95_halfwidth())});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Each wave's questions carry provenance to their own wave's "
      "documents; earlier record ids are never regenerated or disturbed "
      "(content-addressed chunk ids make re-ingestion idempotent).\n");
  return 0;
}
