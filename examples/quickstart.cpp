// Quickstart: build the full pipeline at a small scale, print the
// artifact funnel, and evaluate two models under all five conditions.
//
//   ./build/examples/quickstart [scale]
//
// Scale 0.01 (~225 docs) runs in a few seconds.

#include <cstdio>
#include <cstdlib>

#include "core/pipeline.hpp"
#include "eval/report.hpp"

int main(int argc, char** argv) {
  using namespace mcqa;

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.01;
  std::printf("Building pipeline at scale %.3f of the paper's corpus...\n",
              scale);

  const core::PipelineContext ctx(core::PipelineConfig::paper_scale(scale));
  const core::PipelineStats& stats = ctx.stats();

  std::printf("\n=== Pipeline funnel ===\n");
  std::printf("documents          : %zu (%zu parse failures)\n",
              stats.documents, stats.parse_failures);
  std::printf("chunks             : %zu\n", stats.chunks);
  std::printf("MCQ candidates     : %zu\n", stats.funnel.candidates);
  std::printf("accepted questions : %zu (%.1f%% of chunks)\n",
              stats.funnel.accepted, 100.0 * stats.funnel.acceptance_rate());
  std::printf("traces per mode    : %zu/%zu/%zu "
              "(detailed/focused/efficient)\n",
              stats.traces_per_mode[0], stats.traces_per_mode[1],
              stats.traces_per_mode[2]);
  std::printf("chunk embeddings   : %.2f MB fp16\n",
              static_cast<double>(stats.embedding_bytes) / 1048576.0);
  std::printf("exam items         : %zu usable, %zu no-math\n",
              ctx.exam_all().size(), ctx.exam_no_math().size());
  std::printf("build time         : %.2fs\n", stats.build_seconds);

  // Evaluate a small and a large student on the synthetic benchmark.
  const eval::EvalHarness harness(ctx.rag());
  const auto conditions = eval::all_conditions();

  eval::TableWriter table({"Model", "Baseline", "RAG-Chunks", "RT-Detail",
                           "RT-Focused", "RT-Efficient"});
  for (const char* name : {"TinyLlama-1.1B-Chat", "Llama-3.1-8B-Instruct"}) {
    const auto& card = llm::student_card(name);
    const llm::StudentModel model(card);
    std::vector<std::string> row{card.spec.name};
    for (const auto c : conditions) {
      const eval::Accuracy acc =
          harness.evaluate(model, card.spec, ctx.benchmark(), c);
      row.push_back(eval::fmt_acc(acc.value()));
    }
    table.add_row(std::move(row));
  }
  std::printf("\n=== Synthetic benchmark (sample of models) ===\n%s",
              table.render().c_str());

  std::printf(
      "\nReasoning-trace retrieval should dominate chunks, which should\n"
      "dominate baseline — the paper's headline ordering.\n");
  return 0;
}
