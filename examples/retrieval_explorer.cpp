// Retrieval explorer: inspect what the RAG layer hands the students.
//
//   ./build/examples/retrieval_explorer [scale]
//
// For every condition it reports, over the synthetic benchmark and the
// Astro exam: how often the probed fact survives into the prompt, its
// mean saliency, how often traces dismiss wrong options, and how often
// the context lends false support to a distractor.  This is the
// observability tool for calibrating the simulation against the paper.

#include <cstdio>
#include <cstdlib>

#include "core/pipeline.hpp"

namespace {

struct ConditionDiag {
  std::size_t n = 0;
  std::size_t has_fact = 0;
  double saliency_sum = 0.0;
  std::size_t has_elim = 0;
  std::size_t has_mislead = 0;
  std::size_t empty_context = 0;
};

ConditionDiag probe(const mcqa::core::PipelineContext& ctx,
                    const std::vector<mcqa::qgen::McqRecord>& records,
                    mcqa::rag::Condition condition,
                    const mcqa::llm::ModelSpec& spec) {
  ConditionDiag d;
  for (const auto& rec : records) {
    const auto task = ctx.rag().prepare(rec, condition, spec);
    ++d.n;
    if (task.context.empty()) ++d.empty_context;
    if (task.context_has_fact) {
      ++d.has_fact;
      d.saliency_sum += task.context_saliency;
    }
    if (task.context_has_elimination) ++d.has_elim;
    if (!task.context_misleading_options.empty()) ++d.has_mislead;
  }
  return d;
}

void report(const char* title, const ConditionDiag& d) {
  std::printf(
      "  %-18s n=%-5zu fact-in-ctx=%5.1f%%  mean-sal=%.3f  elim=%5.1f%%  "
      "mislead=%5.1f%%  empty=%4.1f%%\n",
      title, d.n, 100.0 * static_cast<double>(d.has_fact) / d.n,
      d.has_fact ? d.saliency_sum / static_cast<double>(d.has_fact) : 0.0,
      100.0 * static_cast<double>(d.has_elim) / d.n,
      100.0 * static_cast<double>(d.has_mislead) / d.n,
      100.0 * static_cast<double>(d.empty_context) / d.n);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcqa;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.01;
  const core::PipelineContext ctx(core::PipelineConfig::paper_scale(scale));

  // Use a mid-size spec (8K window) and the smallest window for contrast.
  const llm::ModelSpec big = llm::student_card("Llama-3.1-8B-Instruct").spec;
  const llm::ModelSpec small = llm::student_card("OLMo-7B").spec;

  const rag::Condition conds[] = {
      rag::Condition::kChunks, rag::Condition::kTraceDetailed,
      rag::Condition::kTraceFocused, rag::Condition::kTraceEfficient};
  const char* cond_names[] = {"chunks", "rt-detail", "rt-focused",
                              "rt-efficient"};

  std::printf("=== Synthetic benchmark (%zu records), 32K window ===\n",
              ctx.benchmark().size());
  for (int c = 0; c < 4; ++c) {
    report(cond_names[c], probe(ctx, ctx.benchmark(), conds[c], big));
  }
  std::printf("=== Synthetic benchmark, 2K window ===\n");
  for (int c = 0; c < 4; ++c) {
    report(cond_names[c], probe(ctx, ctx.benchmark(), conds[c], small));
  }
  std::printf("=== Astro exam all (%zu records), 32K window ===\n",
              ctx.exam_all().size());
  for (int c = 0; c < 4; ++c) {
    report(cond_names[c], probe(ctx, ctx.exam_all(), conds[c], big));
  }
  std::printf("=== Astro exam all, 2K window ===\n");
  for (int c = 0; c < 4; ++c) {
    report(cond_names[c], probe(ctx, ctx.exam_all(), conds[c], small));
  }
  return 0;
}
