// Domain-adaptation walkthrough: the paper's core story for one small
// model.  Shows a benchmark question, the retrieved contexts under each
// condition, the model's answers, and the judge's grading — then the
// accuracy trajectory Baseline -> RAG-Chunks -> RAG-Traces.
//
//   ./build/examples/domain_adaptation [model-name] [scale]

#include <cstdio>
#include <cstdlib>

#include "core/pipeline.hpp"
#include "eval/judge.hpp"
#include "eval/report.hpp"

namespace {

void show_condition(const mcqa::core::PipelineContext& ctx,
                    const mcqa::llm::StudentModel& model,
                    const mcqa::qgen::McqRecord& record,
                    mcqa::rag::Condition condition) {
  using namespace mcqa;
  const eval::Judge judge;
  const llm::McqTask task =
      ctx.rag().prepare(record, condition, model.card().spec);
  const llm::AnswerResult answer = model.answer(task);
  const trace::GradingResult grading = judge.grade(task, answer.text);

  std::printf("--- %s ---\n",
              std::string(rag::condition_name(condition)).c_str());
  if (!task.context.empty()) {
    std::string preview = task.context.substr(0, 220);
    for (auto& c : preview) {
      if (c == '\n') c = ' ';
    }
    std::printf("retrieved context: \"%s...\"\n", preview.c_str());
  }
  std::printf("model answer     : %s\n", answer.text.c_str());
  std::printf("judge            : %s (extracted option %d, key %d)\n\n",
              grading.is_correct ? "CORRECT" : "incorrect",
              grading.extracted_option_number, grading.correct_option_number);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcqa;
  const std::string model_name = argc > 1 ? argv[1] : "TinyLlama-1.1B-Chat";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.01;

  const core::PipelineContext ctx(core::PipelineConfig::paper_scale(scale));
  const auto& card = llm::student_card(model_name);
  const llm::StudentModel model(card);

  std::printf("Domain adaptation walkthrough: %s (%.1fB params, %zu-token "
              "window)\n\n",
              card.spec.name.c_str(), card.spec.params_billions,
              card.spec.context_window);

  // Pick a question the model gets wrong at baseline but right with
  // traces — the paper's motivating case.
  const eval::Judge judge;
  const qgen::McqRecord* showcase = nullptr;
  for (const auto& record : ctx.benchmark()) {
    const llm::McqTask base_task = record.to_task();
    const bool base_ok =
        judge.grade(base_task, model.answer(base_task).text).is_correct;
    if (base_ok) continue;
    const llm::McqTask rt_task = ctx.rag().prepare(
        record, rag::Condition::kTraceFocused, card.spec);
    if (judge.grade(rt_task, model.answer(rt_task).text).is_correct) {
      showcase = &record;
      break;
    }
  }

  if (showcase != nullptr) {
    std::printf("question: %s\n\n", showcase->question.c_str());
    show_condition(ctx, model, *showcase, rag::Condition::kBaseline);
    show_condition(ctx, model, *showcase, rag::Condition::kChunks);
    show_condition(ctx, model, *showcase, rag::Condition::kTraceFocused);
  }

  // Full trajectory on both evaluation sets.
  const eval::EvalHarness harness(ctx.rag());
  eval::TableWriter table({"Evaluation set", "Baseline", "RAG-Chunks",
                           "RT-Detail", "RT-Focused", "RT-Efficient"});
  for (const auto& [name, records] :
       {std::pair<const char*, const std::vector<qgen::McqRecord>*>{
            "synthetic benchmark", &ctx.benchmark()},
        {"Astro exam (all)", &ctx.exam_all()},
        {"Astro exam (no-math)", &ctx.exam_no_math()}}) {
    std::vector<std::string> row{name};
    for (const auto c : eval::all_conditions()) {
      row.push_back(eval::fmt_acc(
          harness.evaluate(model, card.spec, *records, c).value()));
    }
    table.add_row(std::move(row));
  }
  std::printf("accuracy trajectory for %s:\n\n%s\n", card.spec.name.c_str(),
              table.render().c_str());
  std::printf(
      "The paper's thesis in one table: distilled reasoning traces from a "
      "frontier model adapt a small model to the domain better than "
      "retrieving the literature itself.\n");
  return 0;
}
