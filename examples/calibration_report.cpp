// Calibration report: measured accuracy vs. the paper's published
// numbers for every cell of Tables 2, 3 and 4.
//
//   ./build/examples/calibration_report [scale]
//
// Prints measured/paper pairs and the mean absolute deviation per table.
// This is the tool used to tune the student profiles; the benches print
// the same comparisons in their final form.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "core/eval_cache.hpp"
#include "core/pipeline.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using mcqa::rag::Condition;

// Paper Table 2 (synthetic benchmark).
const std::map<std::string, std::array<double, 5>> kTable2 = {
    {"OLMo-7B", {0.380, 0.443, 0.709, 0.736, 0.720}},
    {"TinyLlama-1.1B-Chat", {0.176, 0.434, 0.710, 0.699, 0.581}},
    {"Gemma 3 4B-IT", {0.745, 0.837, 0.860, 0.878, 0.873}},
    {"SmolLM3-3B", {0.471, 0.803, 0.826, 0.854, 0.856}},
    {"Mistral-7B-Instruct-v0.3", {0.737, 0.839, 0.886, 0.889, 0.882}},
    {"Llama-3-8B-Instruct", {0.830, 0.864, 0.875, 0.892, 0.897}},
    {"Llama-3.1-8B-Instruct", {0.819, 0.900, 0.915, 0.902, 0.916}},
    {"Qwen-1.5-14B-Chat", {0.776, 0.853, 0.913, 0.908, 0.914}},
};

// Paper Table 3 (Astro all): baseline, chunks, best-of-traces.
const std::map<std::string, std::array<double, 3>> kTable3 = {
    {"OLMo-7B", {0.446, 0.269, 0.563}},
    {"TinyLlama-1.1B-Chat", {0.089, 0.263, 0.319}},
    {"Gemma 3 4B-IT", {0.484, 0.551, 0.605}},
    {"SmolLM3-3B", {0.377, 0.706, 0.772}},
    {"Mistral-7B-Instruct-v0.3", {0.494, 0.542, 0.575}},
    {"Llama-3-8B-Instruct", {0.665, 0.674, 0.542}},
    {"Llama-3.1-8B-Instruct", {0.644, 0.704, 0.686}},
    {"Qwen-1.5-14B-Chat", {0.560, 0.587, 0.602}},
};

// Paper Table 4 (Astro no-math subset).
const std::map<std::string, std::array<double, 3>> kTable4 = {
    {"OLMo-7B", {0.471, 0.238, 0.587}},
    {"TinyLlama-1.1B-Chat", {0.138, 0.259, 0.312}},
    {"Gemma 3 4B-IT", {0.540, 0.640, 0.804}},
    {"SmolLM3-3B", {0.466, 0.751, 0.894}},
    {"Mistral-7B-Instruct-v0.3", {0.598, 0.614, 0.757}},
    {"Llama-3-8B-Instruct", {0.757, 0.730, 0.804}},
    {"Llama-3.1-8B-Instruct", {0.762, 0.783, 0.857}},
    {"Qwen-1.5-14B-Chat", {0.667, 0.667, 0.825}},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mcqa;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.025;
  const core::PipelineContext ctx(core::PipelineConfig::paper_scale(scale));

  // One pool for all three sweeps; when $MCQA_CHECKPOINT_DIR is set the
  // eval-cell cache makes warm re-runs (the common case while tuning
  // one profile) skip the unchanged cells entirely.
  parallel::ThreadPool pool(0);
  const auto harness_for = [&ctx, &pool](
      const std::vector<qgen::McqRecord>& records,
      std::unique_ptr<core::EvalCellCache>& cache) {
    eval::HarnessConfig hc;
    hc.pool = &pool;
    if (!ctx.config().checkpoint_dir.empty()) {
      cache = std::make_unique<core::EvalCellCache>(
          ctx.config().checkpoint_dir,
          core::EvalCellCache::sweep_key(ctx, records));
      hc.cell_cache = cache.get();
    }
    return eval::EvalHarness(ctx.rag(), hc);
  };

  std::printf("benchmark=%zu questions, exam=%zu/%zu (all/no-math)\n\n",
              ctx.benchmark().size(), ctx.exam_all().size(),
              ctx.exam_no_math().size());

  double dev2 = 0.0;
  int n2 = 0;
  std::printf("=== Table 2: synthetic (measured/paper) ===\n");
  std::unique_ptr<core::EvalCellCache> cache2;
  const auto sweep2 =
      harness_for(ctx.benchmark(), cache2)
          .sweep(ctx.student_ptrs(), ctx.student_specs(), ctx.benchmark(),
                 eval::all_conditions());
  for (const auto& card : llm::student_registry()) {
    const auto& paper = kTable2.at(card.spec.name);
    std::printf("%-26s", card.spec.name.c_str());
    int i = 0;
    for (const auto c : eval::all_conditions()) {
      const double m = sweep2.at(card.spec.name, c).value();
      std::printf("  %.3f/%.3f", m, paper[i]);
      dev2 += std::fabs(m - paper[i]);
      ++n2;
      ++i;
    }
    std::printf("\n");
  }
  std::printf("Table 2 mean |dev| = %.3f\n\n", dev2 / n2);

  const auto report_exam = [&](const char* title,
                               const std::vector<qgen::McqRecord>& records,
                               const std::map<std::string,
                                              std::array<double, 3>>& paper) {
    double dev = 0.0;
    int n = 0;
    std::printf("=== %s: baseline, chunks, RT-best (measured/paper) ===\n",
                title);
    std::unique_ptr<core::EvalCellCache> cache;
    const auto sweep =
        harness_for(records, cache)
            .sweep(ctx.student_ptrs(), ctx.student_specs(), records,
                   eval::all_conditions());
    for (const auto& card : llm::student_registry()) {
      const auto& p = paper.at(card.spec.name);
      const double base =
          sweep.at(card.spec.name, Condition::kBaseline).value();
      const double chunks =
          sweep.at(card.spec.name, Condition::kChunks).value();
      const double best = sweep.best_trace(card.spec.name).second.value();
      std::printf("%-26s  %.3f/%.3f  %.3f/%.3f  %.3f/%.3f\n",
                  card.spec.name.c_str(), base, p[0], chunks, p[1], best,
                  p[2]);
      dev += std::fabs(base - p[0]) + std::fabs(chunks - p[1]) +
             std::fabs(best - p[2]);
      n += 3;
    }
    std::printf("%s mean |dev| = %.3f\n\n", title, dev / n);
  };

  report_exam("Table 3 (Astro all)", ctx.exam_all(), kTable3);
  report_exam("Table 4 (Astro no-math)", ctx.exam_no_math(), kTable4);
  return 0;
}
